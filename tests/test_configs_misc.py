"""Validation and small-utility tests: configs, RNG helpers, latency
model derivations, and system naming."""

import pytest

from repro.common.rng import make_rng, zipf_sample, zipf_weights
from repro.common.units import MIB
from repro.baselines.aifm import AifmConfig
from repro.baselines.fastswap import FastswapConfig
from repro.core import DilosConfig
from repro.harness import make_system
from repro.net.latency import CPU_GHZ, LatencyModel, cycles_to_us


class TestDilosConfig:
    def test_defaults_valid(self):
        DilosConfig().validate()

    def test_bad_sizes(self):
        with pytest.raises(ValueError):
            DilosConfig(local_mem_bytes=0).validate()
        with pytest.raises(ValueError):
            DilosConfig(remote_mem_bytes=-1).validate()

    def test_bad_prefetcher(self):
        with pytest.raises(ValueError):
            DilosConfig(prefetcher="psychic").validate()

    def test_all_prefetchers_accepted(self):
        for name in ("none", "readahead", "trend", "stride"):
            DilosConfig(prefetcher=name).validate()

    def test_bad_watermarks(self):
        with pytest.raises(ValueError):
            DilosConfig(low_watermark_frac=0.2,
                        high_watermark_frac=0.1).validate()
        with pytest.raises(ValueError):
            DilosConfig(low_watermark_frac=0.0).validate()

    def test_bad_cores(self):
        with pytest.raises(ValueError):
            DilosConfig(cores=0).validate()


class TestFastswapConfig:
    def test_defaults_valid(self):
        FastswapConfig().validate()

    def test_bad_window(self):
        with pytest.raises(ValueError):
            FastswapConfig(readahead_window=0).validate()

    def test_bad_watermarks(self):
        with pytest.raises(ValueError):
            FastswapConfig(min_watermark_frac=0.4,
                           high_watermark_frac=0.3).validate()


class TestAifmConfig:
    def test_defaults_valid(self):
        AifmConfig().validate()

    def test_bad_transport(self):
        with pytest.raises(ValueError):
            AifmConfig(transport="carrier-pigeon").validate()

    def test_bad_depth(self):
        with pytest.raises(ValueError):
            AifmConfig(prefetch_depth=-1).validate()


class TestSystemNames:
    def test_presentation_names(self):
        assert make_system("fastswap", 2 * MIB).name == "Fastswap"
        assert "readahead" in make_system("dilos-readahead", 2 * MIB).name
        assert make_system("dilos-tcp", 2 * MIB).name == "DiLOS-TCP"
        assert make_system("aifm", 2 * MIB).name == "AIFM"
        assert make_system("aifm-rdma", 2 * MIB).name == "AIFM-RDMA"


class TestRng:
    def test_make_rng_independent_streams(self):
        a, b = make_rng(1), make_rng(1)
        assert [a.random() for _ in range(5)] == \
            [b.random() for _ in range(5)]
        assert make_rng(2).random() != make_rng(3).random()

    def test_zipf_weights_shape(self):
        weights = zipf_weights(10, skew=1.0)
        assert len(weights) == 10
        assert weights[0] == 1.0
        assert weights == sorted(weights, reverse=True)

    def test_zipf_weights_bad_n(self):
        with pytest.raises(ValueError):
            zipf_weights(0)

    def test_zipf_sample_skews_low_ranks(self):
        rng = make_rng(7)
        samples = zipf_sample(rng, n=100, count=5000, skew=1.2)
        assert all(0 <= s < 100 for s in samples)
        low = sum(1 for s in samples if s < 10)
        high = sum(1 for s in samples if s >= 90)
        assert low > 5 * max(1, high)


class TestLatencyModel:
    def test_cycles_roundtrip(self):
        model = LatencyModel()
        assert model.cycles(2300) == pytest.approx(1.0)
        assert cycles_to_us(CPU_GHZ * 1000) == pytest.approx(1.0)

    def test_tcp_extra_is_14k_cycles(self):
        assert LatencyModel().tcp_extra == pytest.approx(
            cycles_to_us(14_000))

    def test_sg_overhead_zero_for_single_segment(self):
        model = LatencyModel()
        assert model.sg_overhead(1) == 0.0
        assert model.sg_overhead(0) == 0.0

    def test_exception_sum_matches_figure1(self):
        model = LatencyModel()
        assert model.hw_exception + model.os_fault_entry == \
            pytest.approx(0.57)
