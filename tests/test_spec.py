"""Tests for the declarative boot layer (repro.core.spec)."""

import pytest

from repro.common.clock import Clock
from repro.common.units import KIB, MIB, PAGE_SIZE
from repro.core.spec import (
    BACKEND_SPEC_EXAMPLES,
    SystemSpec,
    backend_kinds,
    backend_label,
    kernel_kinds,
    make_backend,
    register_kernel,
    unregister_kernel,
)
from repro.harness import SYSTEM_KINDS, make_system
from repro.mem.cluster import (
    ParityStripedMemory,
    ReplicatedMemory,
    ShardedMemory,
)
from repro.mem.remote import MemoryNode


class TestKernelRegistry:
    def test_all_presentation_kinds_registered(self):
        assert set(SYSTEM_KINDS) <= set(kernel_kinds())
        # Presentation order matches the paper's figure legends.
        assert SYSTEM_KINDS[0] == "fastswap"
        assert SYSTEM_KINDS[-1] == "aifm-rdma"

    def test_unknown_kind_raises_with_choices(self):
        with pytest.raises(ValueError, match="unknown system kind"):
            SystemSpec(kind="linux", local_mem_bytes=2 * MIB).boot()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_kernel("fastswap")(lambda spec, backend: None)

    def test_extension_kind_boots_through_make_system(self):
        marker = object()
        register_kernel("toy")(lambda spec, backend: marker)
        try:
            assert SystemSpec(kind="toy").boot() is marker
        finally:
            unregister_kernel("toy")

    def test_spec_boot_matches_legacy_flavors(self):
        assert SystemSpec(kind="dilos-stride",
                          local_mem_bytes=2 * MIB).boot() \
            .config.prefetcher == "stride"
        tcp = SystemSpec(kind="dilos-tcp", local_mem_bytes=2 * MIB).boot()
        assert tcp.config.tcp_emulation and tcp.config.prefetcher == \
            "readahead"
        assert SystemSpec(kind="aifm-rdma", local_mem_bytes=2 * MIB).boot() \
            .config.transport == "rdma"


class TestBackendRegistry:
    def test_registered_kinds(self):
        assert set(backend_kinds()) == {"node", "sharded", "replicated",
                                        "parity", "pool"}

    def test_node_backend(self):
        backend = make_backend("node", 8 * MIB)
        assert isinstance(backend, MemoryNode)
        assert backend.capacity == 8 * MIB

    def test_none_means_node(self):
        assert isinstance(make_backend(None, 8 * MIB), MemoryNode)

    def test_sharded_splits_capacity(self):
        backend = make_backend("sharded:4", 8 * MIB)
        assert isinstance(backend, ShardedMemory)
        assert len(backend.nodes) == 4
        assert backend.capacity >= 8 * MIB
        for node in backend.nodes:
            assert node.capacity % PAGE_SIZE == 0

    def test_replicated_full_capacity_per_mirror(self):
        backend = make_backend("replicated:3", 8 * MIB)
        assert isinstance(backend, ReplicatedMemory)
        assert len(backend.mirrors) == 2
        assert backend.primary.capacity == 8 * MIB

    def test_parity_k_plus_one(self):
        backend = make_backend("parity:4+1", 8 * MIB)
        assert isinstance(backend, ParityStripedMemory)
        assert len(backend.data_nodes) == 4

    def test_ready_object_passes_through(self):
        node = MemoryNode(4 * MIB)
        assert make_backend(node, 64 * MIB) is node

    def test_bad_specs_raise(self):
        for bad in ("mesh:3", "sharded:x", "sharded:1", "replicated:1",
                    "parity:1+1", "parity:2+2", "node:3"):
            with pytest.raises(ValueError):
                make_backend(bad, 8 * MIB)
        with pytest.raises(TypeError):
            make_backend(object(), 8 * MIB)
        with pytest.raises(ValueError):
            make_backend("node", 0)

    def test_backend_label(self):
        assert backend_label(None) == "node"
        assert backend_label("sharded:4") == "sharded:4"
        assert backend_label(MemoryNode(1 * MIB)) == "MemoryNode"


class TestSpecBoot:
    def test_injected_clock_is_shared(self):
        clock = Clock()
        system = SystemSpec(kind="dilos-readahead", local_mem_bytes=2 * MIB,
                            clock=clock).boot()
        assert system.clock is clock

    def test_injected_backend_is_shared(self):
        backend = make_backend("sharded:2", 32 * MIB)
        a = SystemSpec(kind="dilos-readahead", local_mem_bytes=1 * MIB,
                       backend=backend).boot()
        b = SystemSpec(kind="fastswap", local_mem_bytes=1 * MIB,
                       backend=backend).boot()
        assert a.node is backend and b.node is backend

    def test_net_faults_spec_string_parsed_once(self):
        system = SystemSpec(kind="dilos-readahead", local_mem_bytes=2 * MIB,
                            net_faults="drop=0.01,seed=7").boot()
        plan = system.config.net_faults
        assert plan is not None and plan.drop == pytest.approx(0.01)

    def test_overrides_reach_config(self):
        system = SystemSpec(kind="dilos-readahead", local_mem_bytes=2 * MIB,
                            overrides={"readahead_window": 4}).boot()
        assert system.config.readahead_window == 4


class TestBackendSmoke:
    """Every kernel boots and runs real IO on every backend kind."""

    @pytest.mark.parametrize("kind", SYSTEM_KINDS)
    @pytest.mark.parametrize("backend", BACKEND_SPEC_EXAMPLES)
    def test_kernel_runs_on_backend(self, kind, backend):
        system = make_system(kind, 512 * KIB, remote_bytes=16 * MIB,
                             backend=backend)
        if kind.startswith("aifm"):
            ptr = system.allocate(PAGE_SIZE, data=b"q" * PAGE_SIZE)
            assert ptr.read(0, 8) == b"qqqqqqqq"
        else:
            region = system.mmap(2 * MIB, name="smoke")
            for i in range(0, 2 * MIB, PAGE_SIZE):
                system.memory.write(region.base + i, b"%08d" % i)
            for i in range(0, 2 * MIB, PAGE_SIZE):
                assert system.memory.read(region.base + i, 8) == b"%08d" % i
            # With 512 KiB local against a 2 MiB working set the smoke
            # run must actually exercise the backend's data path.
            assert system.metrics()["major_faults"] > 0

    def test_default_backend_unchanged(self):
        """`make_system` without a backend still boots the historical
        single node (the golden-master suite pins exact digests)."""
        system = make_system("dilos-readahead", 2 * MIB)
        assert isinstance(system.node, MemoryNode)


class TestSweepBackend:
    def test_sweep_stamps_and_forwards_backend(self):
        from repro.harness.experiment import Measurement, sweep_ratios

        seen = []

        def runner(kind, ratio, backend="node"):
            seen.append(backend)
            return Measurement("", "", 0.0, value=1.0, unit="ms")

        rows = sweep_ratios("toy", runner, ["dilos-readahead"],
                            ratios=[0.25], backend="sharded:2")
        assert seen == ["sharded:2"]
        assert rows[0].extra["backend"] == "sharded:2"

    def test_sweep_legacy_runner_without_backend_param(self):
        from repro.harness.experiment import Measurement, sweep_ratios

        def runner(kind, ratio):
            return Measurement("", "", 0.0, value=1.0, unit="ms")

        rows = sweep_ratios("toy", runner, ["fastswap"], ratios=[0.5])
        assert rows[0].extra["backend"] == "node"
