"""Wire ``scripts/repair_smoke.py`` into the suite: the documented
node-rejoin reproduction (degraded writes journaled, paced resilver,
scrub repair, byte-exact verification after a second member failure,
same-config determinism on both redundant backends) must pass end to
end, exactly as a user would run it."""

import sys
from pathlib import Path

SCRIPTS = Path(__file__).resolve().parent.parent / "scripts"


def test_repair_smoke():
    sys.path.insert(0, str(SCRIPTS))
    try:
        import repair_smoke
    finally:
        sys.path.remove(str(SCRIPTS))
    assert repair_smoke.main() == 0
