"""Integration tests for the DiLOS kernel: fault taxonomy, eviction
round-trips, prefetch install, reclamation off the critical path, guided
paging, and teardown."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import InvalidAddressError
from repro.common.units import MIB, PAGE_SIZE
from repro.alloc import Mimalloc, MimallocGuide
from repro.core import DilosConfig, DilosSystem


def make_system(local_mib=2, remote_mib=64, **kwargs):
    config = DilosConfig(local_mem_bytes=local_mib * MIB,
                         remote_mem_bytes=remote_mib * MIB, **kwargs)
    return DilosSystem(config)


def fill_pattern(page_index, nbytes=64):
    return bytes((page_index * 31 + j) % 256 for j in range(nbytes))


class TestFaultTaxonomy:
    def test_first_touch_is_not_major(self):
        system = make_system()
        region = system.mmap(1 * MIB)
        system.memory.write(region.base, b"x")
        m = system.metrics()
        assert m["first_touch_faults"] == 1
        assert m["major_faults"] == 0

    def test_unmapped_access_raises(self):
        system = make_system()
        with pytest.raises(InvalidAddressError):
            system.memory.read(0x10, 1)

    def test_major_fault_after_eviction(self):
        system = make_system(local_mib=1)
        region = system.mmap(4 * MIB)
        pages = region.size // PAGE_SIZE
        for i in range(pages):
            system.memory.write(region.base + i * PAGE_SIZE, fill_pattern(i))
        system.clock.advance(1000)
        system.memory.read(region.base, 8)
        assert system.metrics()["major_faults"] >= 1

    def test_no_prefetch_means_no_minor_faults(self):
        system = make_system(local_mib=1, prefetcher="none")
        region = system.mmap(4 * MIB)
        pages = region.size // PAGE_SIZE
        for i in range(pages):
            system.memory.write(region.base + i * PAGE_SIZE, fill_pattern(i))
        for i in range(pages):
            system.memory.read(region.base + i * PAGE_SIZE, 16)
        m = system.metrics()
        assert m["minor_faults"] == 0
        assert m["prefetches_issued"] == 0


class TestDataIntegrity:
    def test_sequential_roundtrip_under_pressure(self):
        system = make_system(local_mib=1, prefetcher="readahead")
        region = system.mmap(8 * MIB)
        pages = region.size // PAGE_SIZE
        for i in range(pages):
            system.memory.write(region.base + i * PAGE_SIZE, fill_pattern(i))
        for i in range(pages):
            got = system.memory.read(region.base + i * PAGE_SIZE, 64)
            assert got == fill_pattern(i), f"page {i} corrupted"
        assert system.metrics()["pages_evicted"] > 0

    def test_random_access_roundtrip(self):
        system = make_system(local_mib=1, prefetcher="trend")
        region = system.mmap(6 * MIB)
        pages = region.size // PAGE_SIZE
        rng = random.Random(42)
        written = {}
        for _ in range(3000):
            page = rng.randrange(pages)
            if page in written and rng.random() < 0.5:
                got = system.memory.read(region.base + page * PAGE_SIZE, 64)
                assert got == written[page], f"page {page} corrupted"
            else:
                data = fill_pattern(rng.randrange(10000))
                system.memory.write(region.base + page * PAGE_SIZE, data)
                written[page] = data

    def test_rewrite_after_eviction_persists(self):
        system = make_system(local_mib=1)
        region = system.mmap(4 * MIB)
        pages = region.size // PAGE_SIZE
        for i in range(pages):
            system.memory.write(region.base + i * PAGE_SIZE, fill_pattern(i))
        # Rewrite page 0 (refetch + dirty again), thrash, read back.
        system.memory.write(region.base, b"second version")
        for i in range(pages):
            system.memory.read(region.base + i * PAGE_SIZE, 8)
        assert system.memory.read(region.base, 14) == b"second version"


class TestReclamationOffCriticalPath:
    def test_no_direct_reclaim_in_steady_state(self):
        system = make_system(local_mib=1, prefetcher="readahead")
        region = system.mmap(8 * MIB)
        pages = region.size // PAGE_SIZE
        for i in range(pages):
            system.memory.write(region.base + i * PAGE_SIZE, fill_pattern(i))
        for i in range(pages):
            system.memory.read(region.base + i * PAGE_SIZE, 64)
        m = system.metrics()
        assert m["pages_evicted"] > pages  # real pressure
        assert m["direct_reclaims"] == 0  # the DiLOS claim

    def test_fault_breakdown_has_no_reclaim_component(self):
        system = make_system(local_mib=1, prefetcher="none")
        region = system.mmap(4 * MIB)
        pages = region.size // PAGE_SIZE
        for i in range(pages):
            system.memory.write(region.base + i * PAGE_SIZE, fill_pattern(i))
        for i in range(pages):
            system.memory.read(region.base + i * PAGE_SIZE, 8)
        avgs = system.kernel.breakdown.averages()
        assert avgs["reclaim"] == 0.0
        assert avgs["fetch"] > avgs["software"]

    def test_direct_reclaim_only_ablation_pays_inline(self):
        system = make_system(local_mib=1, prefetcher="none",
                             direct_reclaim_only=True)
        region = system.mmap(4 * MIB)
        pages = region.size // PAGE_SIZE
        for i in range(pages):
            system.memory.write(region.base + i * PAGE_SIZE, fill_pattern(i))
        for i in range(pages):
            system.memory.read(region.base + i * PAGE_SIZE, 8)
        m = system.metrics()
        assert m["direct_reclaims"] > 0
        assert system.kernel.breakdown.averages()["reclaim"] > 0


class TestPrefetchInstall:
    def test_prefetched_pages_mapped_without_major_fault(self):
        system = make_system(local_mib=1, prefetcher="readahead")
        region = system.mmap(8 * MIB)
        pages = region.size // PAGE_SIZE
        for i in range(pages):
            system.memory.write(region.base + i * PAGE_SIZE, fill_pattern(i))
        for i in range(pages):
            system.memory.read(region.base + i * PAGE_SIZE, 64)
        m = system.metrics()
        assert m["prefetches_issued"] > 0
        # Sequential read: roughly one major per readahead window.
        assert m["major_faults"] < pages // 4

    def test_prefetch_never_triggers_reclaim(self):
        system = make_system(local_mib=1, prefetcher="readahead")
        kernel = system.kernel
        region = system.mmap(4 * MIB)
        pages = region.size // PAGE_SIZE
        for i in range(pages):
            system.memory.write(region.base + i * PAGE_SIZE, fill_pattern(i))
        skipped = kernel.counters.get("prefetch_skipped_no_frames")
        # Prefetch requests beyond the reserve must be skipped, not force
        # reclamation; re-reading guarantees such requests existed.
        for i in range(pages):
            system.memory.read(region.base + i * PAGE_SIZE, 8)
        assert kernel.counters.get("direct_reclaims") == 0
        assert skipped >= 0  # counter exists and never went negative


class TestSwapCacheAblation:
    def test_swap_cache_mode_converts_hits_to_minor_faults(self):
        base_cfg = dict(local_mib=1, prefetcher="readahead")
        unified = make_system(**base_cfg)
        cached = make_system(**base_cfg, swap_cache_mode=True)
        results = {}
        for name, system in [("unified", unified), ("cached", cached)]:
            region = system.mmap(6 * MIB)
            pages = region.size // PAGE_SIZE
            for i in range(pages):
                system.memory.write(region.base + i * PAGE_SIZE, fill_pattern(i))
            t0 = system.clock.now
            for i in range(pages):
                got = system.memory.read(region.base + i * PAGE_SIZE, 64)
                assert got == fill_pattern(i)
            results[name] = (system.clock.now - t0, system.metrics())
        assert results["cached"][1]["minor_faults"] > \
            results["unified"][1]["minor_faults"]
        assert results["cached"][0] > results["unified"][0]


class TestGuidedPaging:
    def build(self):
        system = make_system(local_mib=1, remote_mib=64, prefetcher="none",
                             guided_paging=True)
        alloc = Mimalloc(system, arena_bytes=16 * MIB)
        system.kernel.register_allocator_guide(MimallocGuide(alloc))
        return system, alloc

    def test_live_objects_survive_guided_roundtrip(self):
        system, alloc = self.build()
        vas = [alloc.malloc(128) for _ in range(2000)]
        for i, va in enumerate(vas):
            system.memory.write(va, fill_pattern(i, 128))
        # Free ~70% to create page-internal fragmentation (the §6.3 setup).
        rng = random.Random(1)
        live = {}
        for i, va in enumerate(vas):
            if rng.random() < 0.7:
                alloc.free(va)
            else:
                live[va] = fill_pattern(i, 128)
        # Thrash through unrelated memory to force full eviction.
        scratch = system.mmap(4 * MIB, name="scratch")
        for i in range(scratch.size // PAGE_SIZE):
            system.memory.write(scratch.base + i * PAGE_SIZE, b"z" * 32)
        system.clock.advance(2000)
        for va, expect in live.items():
            assert system.memory.read(va, 128) == expect
        assert system.kernel.counters.get("action_fetches") > 0

    def test_guided_paging_reduces_wire_bytes(self):
        def run(guided):
            system = make_system(local_mib=1, remote_mib=64,
                                 prefetcher="none", guided_paging=guided)
            alloc = Mimalloc(system, arena_bytes=16 * MIB)
            if guided:
                system.kernel.register_allocator_guide(MimallocGuide(alloc))
            vas = [alloc.malloc(128) for _ in range(4000)]
            for i, va in enumerate(vas):
                system.memory.write(va, fill_pattern(i, 128))
            rng = random.Random(2)
            kept = [va for va in vas if rng.random() > 0.7 or alloc.free(va)]
            system.clock.advance(3000)
            for va in kept:
                system.memory.read(va, 128)
            stats = system.kernel.comm.stats
            return stats.bytes_read + stats.bytes_written

        assert run(guided=True) < run(guided=False)


class TestTeardown:
    def test_munmap_releases_everything(self):
        system = make_system(local_mib=2)
        region = system.mmap(1 * MIB)
        pages = region.size // PAGE_SIZE
        for i in range(pages):
            system.memory.write(region.base + i * PAGE_SIZE, b"x")
        used_before = system.frames.used_frames
        assert used_before >= pages
        system.munmap(region)
        assert system.frames.used_frames == used_before - pages
        with pytest.raises(InvalidAddressError):
            system.memory.read(region.base, 1)

    def test_munmap_with_remote_pages(self):
        system = make_system(local_mib=1)
        region = system.mmap(4 * MIB)
        pages = region.size // PAGE_SIZE
        for i in range(pages):
            system.memory.write(region.base + i * PAGE_SIZE, b"x")
        system.clock.advance(1000)
        free_slots_before = system.node.free_slots
        system.munmap(region)
        assert system.node.free_slots > free_slots_before


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       prefetcher=st.sampled_from(["none", "readahead", "trend"]))
def test_paging_preserves_data_property(seed, prefetcher):
    """Whatever the access pattern and prefetcher, reads return the last
    value written — the fundamental paging invariant."""
    system = make_system(local_mib=1, prefetcher=prefetcher)
    region = system.mmap(3 * MIB)
    pages = region.size // PAGE_SIZE
    rng = random.Random(seed)
    shadow = {}
    for step in range(800):
        page = rng.randrange(pages)
        offset = rng.randrange(0, PAGE_SIZE - 16)
        va = region.base + page * PAGE_SIZE + offset
        if rng.random() < 0.6:
            value = bytes([step % 256] * 16)
            system.memory.write(va, value)
            for j in range(16):
                shadow[va + j] = value[j]
        else:
            got = system.memory.read(va, 16)
            for j in range(16):
                assert got[j] == shadow.get(va + j, 0)


class TestMadvise:
    def test_willneed_prefetches(self):
        system = make_system(local_mib=1, prefetcher="none")
        region = system.mmap(2 * MIB)
        pages = region.size // PAGE_SIZE
        for i in range(pages):
            system.memory.write(region.base + i * PAGE_SIZE, fill_pattern(i))
        system.clock.advance(5000)  # spill
        issued = system.kernel.madvise_willneed(region.base, 16 * PAGE_SIZE)
        assert issued > 0
        system.clock.advance(50)  # let the prefetches land
        t0 = system.clock.now
        for i in range(16):
            assert system.memory.read(
                region.base + i * PAGE_SIZE, 64) == fill_pattern(i)
        # All hits: far cheaper than 16 demand fetches (~3 us each).
        assert system.clock.now - t0 < 16 * 1.5

    def test_dontneed_discards_and_zeroes(self):
        system = make_system(local_mib=2)
        region = system.mmap(1 * MIB)
        system.memory.write(region.base, b"temporary scratch")
        used = system.frames.used_frames
        dropped = system.kernel.madvise_dontneed(region.base, PAGE_SIZE)
        assert dropped == 1
        assert system.frames.used_frames == used - 1
        # Anonymous-memory semantics: next touch reads zeros.
        assert system.memory.read(region.base, 17) == b"\x00" * 17

    def test_dontneed_skips_untouched_pages(self):
        system = make_system(local_mib=2)
        region = system.mmap(1 * MIB)
        assert system.kernel.madvise_dontneed(region.base, region.size) == 0

    def test_dontneed_frees_remote_backing(self):
        system = make_system(local_mib=1)
        region = system.mmap(4 * MIB)
        pages = region.size // PAGE_SIZE
        for i in range(pages):
            system.memory.write(region.base + i * PAGE_SIZE, b"x")
        system.clock.advance(5000)
        slots_before = system.node.free_slots
        system.kernel.madvise_dontneed(region.base, region.size)
        assert system.node.free_slots > slots_before

    def test_bad_range_rejected(self):
        system = make_system()
        with pytest.raises(ValueError):
            system.kernel.madvise_willneed(0x1000, 0)
        with pytest.raises(ValueError):
            system.kernel.madvise_dontneed(0x1000, -5)
