"""Tests for the extended Redis command set: EXISTS/STRLEN/APPEND/INCR,
on both the local and the far-memory index."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.units import MIB
from repro.alloc import Mimalloc
from repro.core import DilosConfig, DilosSystem
from repro.apps.redis import RedisServer


def make_server(index="local", local_mib=2):
    system = DilosSystem(DilosConfig(local_mem_bytes=int(local_mib * MIB),
                                     remote_mem_bytes=128 * MIB))
    return RedisServer(system, Mimalloc(system, arena_bytes=64 * MIB),
                       index=index)


@pytest.fixture(params=["local", "far"])
def server(request):
    return make_server(index=request.param)


class TestExistsStrlen:
    def test_exists(self, server):
        assert not server.exists(b"k")
        server.set(b"k", b"v")
        assert server.exists(b"k")
        server.delete(b"k")
        assert not server.exists(b"k")

    def test_strlen(self, server):
        assert server.strlen(b"k") == 0
        server.set(b"k", b"12345")
        assert server.strlen(b"k") == 5

    def test_strlen_wrongtype(self):
        server = make_server(index="local")
        server.rpush(b"l", [b"x"])
        with pytest.raises(TypeError):
            server.strlen(b"l")


class TestAppend:
    def test_append_creates(self, server):
        assert server.append(b"k", b"abc") == 3
        assert server.get(b"k") == b"abc"

    def test_append_grows(self, server):
        server.set(b"k", b"hello")
        assert server.append(b"k", b" world") == 11
        assert server.get(b"k") == b"hello world"

    def test_append_is_a_realloc(self, server):
        """The old SDS is freed; the heap does not leak."""
        server.set(b"k", b"x" * 100)
        live_before = server.alloc.live_allocations
        for _ in range(10):
            server.append(b"k", b"y" * 50)
        assert server.alloc.live_allocations == live_before
        assert server.get(b"k") == b"x" * 100 + b"y" * 500

    def test_append_across_page_boundary(self, server):
        server.set(b"k", b"a" * 4000)
        server.append(b"k", b"b" * 4000)
        value = server.get(b"k")
        assert value == b"a" * 4000 + b"b" * 4000


class TestIncr:
    def test_incr_creates_at_one(self, server):
        assert server.incr(b"counter") == 1
        assert server.get(b"counter") == b"1"

    def test_incr_sequence(self, server):
        for expected in range(1, 12):
            assert server.incr(b"counter") == expected

    def test_incr_non_integer_rejected(self, server):
        server.set(b"k", b"not-a-number")
        with pytest.raises(ValueError):
            server.incr(b"k")

    def test_incr_under_memory_pressure(self):
        """Counters keep counting while their pages commute."""
        server = make_server(local_mib=0.5)
        for i in range(300):
            server.set(b"pad:%d" % i, b"p" * 4096)
        for _ in range(25):
            server.incr(b"hits")
        # Thrash, then keep counting.
        for i in range(300):
            server.get(b"pad:%d" % i)
        for _ in range(25):
            server.incr(b"hits")
        assert server.get(b"hits") == b"50"


@settings(max_examples=15, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["set", "append", "incr", "del"]),
                          st.integers(min_value=0, max_value=5),
                          st.binary(min_size=1, max_size=40)),
                max_size=40))
def test_command_mix_matches_model_property(ops):
    """A random command mix agrees with a plain-dict reference model."""
    server = make_server()
    model = {}
    for op, key_id, payload in ops:
        key = b"key:%d" % key_id
        if op == "set":
            server.set(key, payload)
            model[key] = payload
        elif op == "append":
            server.append(key, payload)
            model[key] = model.get(key, b"") + payload
        elif op == "incr":
            current = model.get(key, b"0")
            try:
                value = int(current)
            except ValueError:
                with pytest.raises(ValueError):
                    server.incr(key)
                continue
            server.incr(key)
            model[key] = b"%d" % (value + 1)
        elif op == "del":
            assert server.delete(key) == (key in model)
            model.pop(key, None)
    for key, expected in model.items():
        assert server.get(key) == expected


class TestRanges:
    def test_getrange_basic(self, server):
        server.set(b"k", b"hello world")
        assert server.getrange(b"k", 6, 5) == b"world"
        assert server.getrange(b"k", 0, 100) == b"hello world"
        assert server.getrange(b"k", 50, 5) == b""
        assert server.getrange(b"missing", 0, 5) == b""

    def test_setrange_in_place(self, server):
        server.set(b"k", b"hello world")
        assert server.setrange(b"k", 6, b"redis") == 11
        assert server.get(b"k") == b"hello redis"

    def test_setrange_bounds(self, server):
        server.set(b"k", b"short")
        with pytest.raises(ValueError):
            server.setrange(b"k", 3, b"too long for value")
        with pytest.raises(KeyError):
            server.setrange(b"missing", 0, b"x")

    def test_getrange_touches_only_needed_pages(self):
        """Reading 64 B out of a 64 KiB value fetches ~1 page, not 17 —
        the paging analogue of §3.1's sub-object access."""
        server = make_server(local_mib=0.5)
        server.set(b"big", b"\xAB" * 65536)
        server.system.clock.advance(8000)  # evict the value
        reads_before = server.system.kernel.comm.stats.ops_read
        got = server.getrange(b"big", 30000, 64)
        assert got == b"\xAB" * 64
        # Header page + the one page holding the slice.
        assert server.system.kernel.comm.stats.ops_read - reads_before <= 3
