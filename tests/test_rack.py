"""Tests for the rack-scale cluster layer (repro.sim.rack)."""

import pytest

from repro.common.units import KIB, MIB
from repro.core.spec import SystemSpec
from repro.mem.pool import PoolClient
from repro.net.topology import FabricPort
from repro.sim.rack import (
    DEFAULT_RACK_SERVE,
    RackCluster,
    make_rack,
    run_rack_cell,
    sweep_rack,
)

SMALL_RACK = "rack:compute=4,mem=4,link=100,oversub=1"
SMALL_SERVE = ("poisson:rate=400k,clients=1m,slo=2ms,requests=200,"
               "seed=29,balance=round_robin")


def small_spec(kind="dilos-readahead"):
    return SystemSpec(kind=kind, local_mem_bytes=192 * KIB,
                      remote_mem_bytes=16 * MIB)


def small_rack(tenants=4, placement="locality", oversub=1, serve=SMALL_SERVE):
    topo = f"rack:compute=4,mem=4,link=100,oversub={oversub}"
    return make_rack(tenants=tenants, topology=topo, placement=placement,
                     serve=serve, n_keys=16, remote_mem_bytes=16 * MIB)


def small_cell(**over):
    cell = {"placement": "locality", "oversub": 1.0, "tenants": 4,
            "serve": SMALL_SERVE, "n_keys": 16}
    cell.update(over)
    return cell


class TestRackCluster:
    def test_rejects_flat_topology(self):
        with pytest.raises(ValueError, match="rack topology"):
            RackCluster(topology="flat")

    def test_enrollment_binds_pool_and_port(self):
        cluster = RackCluster(topology=SMALL_RACK,
                              remote_mem_bytes=16 * MIB)
        tenants = [cluster.add_tenant(f"t{i}", small_spec(),
                                      lambda sys_: iter(()))
                   for i in range(6)]
        # Round-robin striping wraps past the 4 compute nodes.
        assert [t.extra["compute_id"] for t in tenants] == [0, 1, 2, 3,
                                                            0, 1]
        for i, tenant in enumerate(tenants):
            cid = i % 4
            client = tenant.spec.backend
            assert isinstance(client, PoolClient)
            assert client.home == cluster.topology.home(cid)
            port = tenant.spec.topology
            assert isinstance(port, FabricPort)
            assert port.compute_id == cid

    def test_explicit_compute_id(self):
        cluster = RackCluster(topology=SMALL_RACK,
                              remote_mem_bytes=16 * MIB)
        tenant = cluster.add_tenant("t0", small_spec(),
                                    lambda sys_: iter(()), compute_id=3)
        assert tenant.extra["compute_id"] == 3
        with pytest.raises(ValueError, match="no compute node"):
            cluster.add_tenant("t1", small_spec(), lambda sys_: iter(()),
                               compute_id=4)

    def test_rejects_aifm_tenants(self):
        cluster = RackCluster(topology=SMALL_RACK,
                              remote_mem_bytes=16 * MIB)
        with pytest.raises(ValueError, match="AIFM"):
            cluster.add_tenant("t0", small_spec(kind="aifm"),
                               lambda sys_: iter(()))

    def test_backend_label_names_pool(self):
        cluster = RackCluster(topology=SMALL_RACK, placement="pack",
                              remote_mem_bytes=16 * MIB)
        assert cluster.backend_label == "pool:4/pack"


class TestRackMetrics:
    def test_snapshot_carries_topo_and_pool_families(self):
        cluster = small_rack()
        cluster.serve()
        snap = cluster.metrics()
        for name in ("topo.bytes", "topo.queue_us", "topo.trunk_crossings",
                     "pool.alloc", "pool.spills", "pool.stranded_slots",
                     "pool.frag_imbalance"):
            assert name in snap.counters, name
        assert snap.extra["topology"] == SMALL_RACK
        assert snap.extra["placement"] == "locality"
        assert snap.value("topo.bytes") > 0

    def test_locality_avoids_trunk_load_crosses_it(self):
        locality = small_rack(placement="locality")
        locality.serve()
        load = small_rack(placement="load")
        load.serve()
        assert locality.metrics().value("topo.trunk_crossings") == 0
        assert load.metrics().value("topo.trunk_crossings") > 0

    def test_uneven_striping_strands_under_locality(self):
        # 6 tenants over 4 compute nodes double up homes 0 and 1, so
        # locality packs those nodes while 2 and 3 keep free slots.
        locality = small_rack(tenants=6, placement="locality")
        load = small_rack(tenants=6, placement="load")
        assert locality.pool.stranded_slots > 0
        # Load balancing leaves at most a rounding remainder (< one
        # slot per node) stranded.
        assert load.pool.stranded_slots < len(load.pool.nodes)
        assert load.pool.stranded_slots < locality.pool.stranded_slots

    def test_link_report_shape(self):
        cluster = small_rack()
        cluster.serve()
        report = cluster.link_report()
        assert "trunk" in report
        assert {"bytes", "queue_us", "util"} <= set(report["trunk"])


class TestServeRerun:
    def test_second_serve_does_not_double_count(self):
        """Regression: registry instruments are shared by name, so a
        second ``serve()`` on the same cluster used to accumulate on top
        of the first run's counts."""
        cluster = small_rack(tenants=2)
        first = cluster.serve()
        second = cluster.serve()
        offered = first.snapshot.value("serve.offered")
        assert offered == 200
        assert second.snapshot.value("serve.offered") == offered
        assert second.snapshot.value("serve.completed") == \
            first.snapshot.value("serve.completed")


class TestSweep:
    def test_cell_is_deterministic(self):
        cell = small_cell(oversub=4.0)
        a = run_rack_cell(cell)
        b = run_rack_cell(cell)
        assert a == b
        assert a["trace_digest"] == b["trace_digest"]
        assert a["metrics_digest"] == b["metrics_digest"]

    def test_parallel_matches_serial(self):
        kwargs = dict(tenants=4, serve=SMALL_SERVE, n_keys=16)
        serial = sweep_rack(["locality", "load"], [4.0], jobs=1, **kwargs)
        fanned = sweep_rack(["locality", "load"], [4.0], jobs=2, **kwargs)
        assert serial == fanned
        assert [r["placement"] for r in serial] == ["locality", "load"]

    def test_grid_order(self):
        rows = sweep_rack(["locality", "load"], [1.0, 4.0], jobs=1,
                          tenants=2, serve=SMALL_SERVE, n_keys=16)
        assert [(r["placement"], r["oversub"]) for r in rows] == [
            ("locality", 1.0), ("locality", 4.0),
            ("load", 1.0), ("load", 4.0)]

    def test_default_serve_spec_is_heavier(self):
        # Presets must stay aligned: the CLI default drives 2000
        # requests; tests deliberately use a lighter spec.
        assert "requests=2000" in DEFAULT_RACK_SERVE


class TestMakeRack:
    def test_bad_tenant_count(self):
        with pytest.raises(ValueError, match="at least one tenant"):
            make_rack(tenants=0)

    def test_tenants_named_and_homed(self):
        cluster = small_rack(tenants=5)
        names = [t.name for t in cluster.tenants]
        assert names == ["t0", "t1", "t2", "t3", "t4"]
        assert [t.extra["compute_id"] for t in cluster.tenants] == \
            [0, 1, 2, 3, 0]
