"""Tests for the rack topology layer (repro.net.topology) and its
integration with the QP wire model and the boot layer."""

import pytest

from repro.common.units import MIB, PAGE_SIZE
from repro.core.spec import (
    TOPOLOGY_SPEC_EXAMPLES,
    SystemSpec,
    make_topology,
    register_topology,
    topology_kinds,
    topology_label,
)
from repro.net.latency import DEFAULT_LATENCY, LatencyModel
from repro.net.qp import QueuePair
from repro.net.topology import FabricPort, Link, RackTopology, coerce_topology


class TestLink:
    def test_serialization_time(self):
        link = Link("l", gbps=100.0)
        # 100 Gbit/s = 12500 bytes/us -> 4096 B takes 0.32768 us.
        assert link.transmit(0.0, 4096) == pytest.approx(4096 / 12500)

    def test_fifo_queueing(self):
        link = Link("l", gbps=100.0)
        first = link.transmit(0.0, 12500)  # busy until 1.0
        assert first == pytest.approx(1.0)
        # Arriving at 0.25 waits 0.75 for the first transfer to drain.
        second = link.transmit(0.25, 12500)
        assert second == pytest.approx(0.75 + 1.0)
        assert link.queue_us == pytest.approx(0.75)
        assert link.busy_us == pytest.approx(2.0)
        assert link.bytes == 25000
        assert link.transfers == 2

    def test_idle_gap_does_not_queue(self):
        link = Link("l", gbps=100.0)
        link.transmit(0.0, 12500)
        assert link.transmit(5.0, 12500) == pytest.approx(1.0)
        assert link.queue_us == 0.0

    def test_utilization(self):
        link = Link("l", gbps=100.0)
        link.transmit(0.0, 12500)
        assert link.utilization(4.0) == pytest.approx(0.25)
        assert link.utilization(0.0) == 0.0

    def test_bad_bandwidth(self):
        with pytest.raises(ValueError):
            Link("l", gbps=0.0)

    def test_link_per_byte_matches(self):
        assert Link("l", 40.0).per_byte_us == pytest.approx(
            LatencyModel.link_per_byte_us(40.0))
        with pytest.raises(ValueError):
            LatencyModel.link_per_byte_us(0)


class TestRackTopology:
    def test_structure(self):
        topo = RackTopology(compute=4, mem=2, link_gbps=100.0, oversub=4.0)
        assert len(topo.uplinks) == 4
        assert len(topo.downlinks) == 2
        assert len(topo.direct) == 4
        # Trunk: aggregate edge capacity / oversubscription.
        assert topo.trunk.gbps == pytest.approx(100.0 * 4 / 4.0)

    def test_home_is_modular(self):
        topo = RackTopology(compute=4, mem=2)
        assert [topo.home(c) for c in range(4)] == [0, 1, 0, 1]

    def test_home_path_bypasses_tor(self):
        topo = RackTopology(compute=2, mem=2)
        (only,) = topo.path(1, 1)
        assert only is topo.direct[1]

    def test_cross_path_uses_three_links(self):
        topo = RackTopology(compute=2, mem=2)
        links = topo.path(0, 1)
        assert links == (topo.uplinks[0], topo.trunk, topo.downlinks[1])

    def test_path_bounds(self):
        topo = RackTopology(compute=2, mem=2)
        with pytest.raises(ValueError):
            topo.path(2, 0)
        with pytest.raises(ValueError):
            topo.path(0, 2)

    def test_transmit_store_and_forward(self):
        topo = RackTopology(compute=2, mem=2, link_gbps=100.0)
        edge = 4096 / 12500
        trunk = 4096 / 12500 / 2  # trunk is 2x the edge rate at oversub=1
        delay = topo.transmit(0, 1, 0.0, 4096)
        assert delay == pytest.approx(2 * edge + trunk)
        assert topo.trunk.transfers == 1

    def test_oversubscribed_trunk_queues(self):
        topo = RackTopology(compute=4, mem=4, link_gbps=100.0, oversub=4.0)
        flat = RackTopology(compute=4, mem=4, link_gbps=100.0, oversub=1.0)
        for t in (topo, flat):
            for c in range(4):
                t.transmit(c, (c + 1) % 4, 0.0, 65536)
        assert topo.trunk.queue_us > flat.trunk.queue_us

    def test_spec_round_trip(self):
        spec = "rack:compute=4,mem=2,link=40,oversub=4"
        topo = RackTopology.from_spec(spec)
        assert topo.spec() == spec
        again = RackTopology.from_spec(topo.spec())
        assert again.trunk.gbps == topo.trunk.gbps

    def test_from_spec_errors(self):
        with pytest.raises(ValueError, match="unknown topology kind"):
            RackTopology.from_spec("mesh:compute=2")
        with pytest.raises(ValueError, match="unknown topology spec key"):
            RackTopology.from_spec("rack:nodes=4")
        with pytest.raises(ValueError, match="bad topology spec value"):
            RackTopology.from_spec("rack:compute=x")

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            RackTopology(compute=0, mem=2)
        with pytest.raises(ValueError):
            RackTopology(compute=2, mem=2, oversub=0.5)

    def test_metrics_families(self):
        topo = RackTopology(compute=2, mem=2)
        topo.transmit(0, 1, 0.0, 4096)
        snap = topo.metrics()
        assert snap.counters["topo.bytes"] == pytest.approx(3 * 4096)
        assert snap.counters["topo.trunk_crossings"] == 1.0
        assert snap.counters["topo.c0_up.bytes"] == pytest.approx(4096)

    def test_link_report(self):
        topo = RackTopology(compute=2, mem=2)
        topo.transmit(0, 0, 0.0, 12500)
        report = topo.link_report(10.0)
        assert report["c0m0"]["bytes"] == 12500.0
        assert report["c0m0"]["util"] == pytest.approx(0.1)


class TestFabricPort:
    def test_resolver_routes_by_offset(self):
        topo = RackTopology(compute=2, mem=2)
        port = topo.port(0, resolver=lambda off: off % 2)
        port.charge(1, 4096, 0.0)  # node 1: crosses the ToR
        assert topo.trunk.transfers == 1
        port.charge(0, 4096, 0.0)  # node 0 is home: direct link
        assert topo.trunk.transfers == 1

    def test_no_resolver_charges_home(self):
        topo = RackTopology(compute=2, mem=2)
        port = topo.port(1)
        port.charge(12345, 4096, 0.0)
        assert topo.direct[1].transfers == 1
        assert topo.trunk.transfers == 0

    def test_none_offset_charges_home(self):
        topo = RackTopology(compute=2, mem=2)
        port = topo.port(0, resolver=lambda off: 1)
        port.charge(None, 4096, 0.0)
        assert topo.direct[0].transfers == 1

    def test_bad_compute_id(self):
        topo = RackTopology(compute=2, mem=2)
        with pytest.raises(ValueError):
            topo.port(2)

    def test_coerce(self):
        topo = RackTopology(compute=2, mem=2)
        assert coerce_topology(None) is None
        assert coerce_topology("flat") is None
        assert coerce_topology(topo) is topo
        assert coerce_topology(topo.port(0)) is topo
        built = coerce_topology("rack:compute=3,mem=3")
        assert built.compute == 3
        with pytest.raises(TypeError):
            coerce_topology(42)


def _qp(fabric=None, capacity=64 * PAGE_SIZE):
    from repro.common.clock import Clock
    from repro.mem.remote import MemoryNode
    from repro.net.qp import NetStats

    return QueuePair("test", Clock(), DEFAULT_LATENCY,
                     MemoryNode(capacity), NetStats(), fabric=fabric)


class TestQpFabricCharging:
    def test_flat_default_identical(self):
        """No fabric attached -> timings identical to the historical
        wire model (the golden-master digests pin this end-to-end)."""
        assert _qp().post_read(0, PAGE_SIZE).time == \
            _qp(fabric=None).post_read(0, PAGE_SIZE).time

    def test_fabric_adds_contention_delay(self):
        topo = RackTopology(compute=1, mem=1, link_gbps=100.0)
        charged = _qp(fabric=topo.port(0))
        assert charged.post_read(0, PAGE_SIZE).time > \
            _qp().post_read(0, PAGE_SIZE).time
        assert topo.direct[0].bytes == PAGE_SIZE

    def test_fabric_routes_by_remote_offset(self):
        topo = RackTopology(compute=2, mem=2)
        node_bytes = 32 * PAGE_SIZE
        port = topo.port(0, resolver=lambda off: off // node_bytes)
        qp = _qp(fabric=port, capacity=2 * node_bytes)
        qp.post_write(node_bytes, b"x" * PAGE_SIZE)
        assert topo.trunk.transfers == 1
        qp.post_read(0, PAGE_SIZE)
        assert topo.trunk.transfers == 1  # home node: direct link


class TestTopologyRegistry:
    def test_kinds_and_examples(self):
        assert set(topology_kinds()) == {"flat", "rack"}
        for example in TOPOLOGY_SPEC_EXAMPLES:
            make_topology(example)  # all examples parse

    def test_flat_means_none(self):
        assert make_topology(None) is None
        assert make_topology("flat") is None
        assert make_topology("") is None

    def test_rack_spec_builds(self):
        topo = make_topology("rack:compute=4,mem=2,oversub=2")
        assert isinstance(topo, RackTopology)
        assert (topo.compute, topo.mem) == (4, 2)

    def test_ready_objects_pass_through(self):
        topo = RackTopology(compute=2, mem=2)
        assert make_topology(topo) is topo
        port = topo.port(0)
        assert make_topology(port) is port

    def test_unknown_kind_raises_with_examples(self):
        with pytest.raises(ValueError, match="unknown topology kind"):
            make_topology("mesh:compute=2")
        with pytest.raises(TypeError):
            make_topology(42)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_topology("rack")(lambda arg: None)

    def test_label(self):
        assert topology_label(None) == "flat"
        assert topology_label("rack:compute=2,mem=2") == "rack:compute=2,mem=2"
        topo = RackTopology(compute=2, mem=2)
        assert topology_label(topo) == topo.spec()
        assert topology_label(topo.port(1)) == topo.spec()


class TestSpecBootTopology:
    def test_default_boot_has_no_fabric(self):
        system = SystemSpec(kind="dilos-readahead",
                            local_mem_bytes=2 * MIB).boot()
        assert system.config.fabric is None

    def test_flat_string_boot_has_no_fabric(self):
        system = SystemSpec(kind="dilos-readahead", local_mem_bytes=2 * MIB,
                            topology="flat").boot()
        assert system.config.fabric is None

    def test_rack_boot_attaches_port(self):
        spec = SystemSpec(kind="dilos-readahead", local_mem_bytes=2 * MIB,
                          topology="rack:compute=2,mem=2")
        system = spec.boot()
        port = system.config.fabric
        assert isinstance(port, FabricPort)
        assert port.compute_id == 0

    def test_rack_boot_resolves_pool_routing(self):
        spec = SystemSpec(kind="dilos-readahead", local_mem_bytes=512 * 1024,
                          remote_mem_bytes=16 * MIB,
                          backend="pool:2/load",
                          topology="rack:compute=2,mem=2")
        system = spec.boot()
        assert system.config.fabric.resolver is not None

    def test_rack_boot_slower_than_flat(self):
        def run(topology):
            system = SystemSpec(kind="dilos-readahead",
                                local_mem_bytes=512 * 1024,
                                remote_mem_bytes=16 * MIB,
                                backend="pool:2/load",
                                topology=topology).boot()
            region = system.mmap(2 * MIB, name="w")
            for i in range(0, 2 * MIB, PAGE_SIZE):
                system.memory.write(region.base + i, b"%08d" % i)
            for i in range(0, 2 * MIB, PAGE_SIZE):
                assert system.memory.read(region.base + i, 8) == b"%08d" % i
            return system.clock.now

        assert run("rack:compute=2,mem=2,oversub=4") > run(None)

    def test_prebound_port_is_kept(self):
        topo = RackTopology(compute=4, mem=2)
        port = topo.port(3)
        spec = SystemSpec(kind="dilos-readahead", local_mem_bytes=2 * MIB,
                          topology=port)
        system = spec.boot()
        assert system.config.fabric is port
