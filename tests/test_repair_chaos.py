"""Chaos property tests for the repair subsystem.

The acceptance sequence from the stale-rejoin bug report, driven by
hypothesis: kill a member at a random point, keep writing (degraded
writes land in the journal), rejoin the member, let the background
resilver run to promotion, then kill a *different* member — and every
byte of a randomized workload must still read back exactly. Before the
repair journal existed, the rejoined member re-entered the read path
with its pre-crash contents and this test's final sweep read stale
bytes.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.units import MIB, PAGE_SIZE
from repro.core import DilosConfig, DilosSystem
from repro.mem.cluster import ParityStripedMemory, ReplicatedMemory
from repro.mem.remote import MemoryNode
from repro.mem.repair import RepairManager

pytestmark = pytest.mark.slow


def build(backend_kind, n_nodes):
    nodes = [MemoryNode(16 * MIB, name=f"m{i}") for i in range(n_nodes)]
    if backend_kind == "replicated":
        backend = ReplicatedMemory(nodes)
    else:
        backend = ParityStripedMemory(nodes)
    system = DilosSystem(DilosConfig(local_mem_bytes=1 * MIB,
                                     remote_mem_bytes=16 * MIB),
                         memory_backend=backend)
    RepairManager(backend, system.clock,
                  policy="resilver_period=200,resilver_batch=16")
    return system, backend, nodes


def resilver_to_promotion(system, backend):
    guard = 0
    while backend.degraded:
        system.clock.advance(1000)
        guard += 1
        assert guard < 5000, "resilver never converged"


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       backend_kind=st.sampled_from(["replicated", "parity"]),
       n_nodes=st.integers(min_value=3, max_value=4),
       fail_point=st.floats(min_value=0.2, max_value=0.6))
def test_rejoin_resilver_then_second_crash_preserves_every_byte(
        seed, backend_kind, n_nodes, fail_point):
    system, backend, nodes = build(backend_kind, n_nodes)
    region = system.mmap(4 * MIB, name="repair-chaos")
    pages = region.size // PAGE_SIZE
    rng = random.Random(seed)
    shadow = {}
    steps = 500
    crash_step = int(steps * fail_point)
    victim = rng.randrange(n_nodes)
    for step in range(steps):
        if step == crash_step:
            system.clock.advance(3000)  # let the cleaner drain first
            nodes[victim].fail()
        page = rng.randrange(pages)
        if page in shadow and rng.random() < 0.4:
            got = system.memory.read(region.base + page * PAGE_SIZE, 16)
            assert got == shadow[page], (
                f"{backend_kind}: page {page} corrupted while degraded")
        else:
            payload = bytes([step % 251] * 16)
            system.memory.write(region.base + page * PAGE_SIZE, payload)
            shadow[page] = payload
    system.clock.advance(5000)
    assert backend.degraded  # the crash window journaled something
    assert backend.rejoin(nodes[victim]) is False  # async resilver
    resilver_to_promotion(system, backend)
    assert backend.stale_slots == 0
    # Now lose a DIFFERENT member: the rejoined one must hold real data.
    second = rng.choice([i for i in range(n_nodes) if i != victim])
    nodes[second].fail()
    for page, payload in shadow.items():
        got = system.memory.read(region.base + page * PAGE_SIZE, 16)
        assert got == payload, (
            f"{backend_kind}: page {page} stale after rejoin+second crash "
            f"(victim={victim}, second={second})")


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       backend_kind=st.sampled_from(["replicated", "parity"]))
def test_writes_during_resilver_never_go_stale(seed, backend_kind):
    """Keep mutating the workload WHILE the member is syncing: inline
    write-throughs and the background resilver race on the same journal
    and must converge to the latest bytes."""
    system, backend, nodes = build(backend_kind, 3)
    region = system.mmap(2 * MIB, name="sync-race")
    pages = region.size // PAGE_SIZE
    rng = random.Random(seed)
    shadow = {}
    for page in range(pages):
        payload = bytes([page % 251] * 16)
        system.memory.write(region.base + page * PAGE_SIZE, payload)
        shadow[page] = payload
    system.clock.advance(5000)
    victim = rng.randrange(3)
    nodes[victim].fail()
    for _ in range(150):
        page = rng.randrange(pages)
        payload = bytes([rng.randrange(251)] * 16)
        system.memory.write(region.base + page * PAGE_SIZE, payload)
        shadow[page] = payload
    system.clock.advance(5000)
    backend.rejoin(nodes[victim])
    # Interleave writes with resilver ticks until promotion.
    guard = 0
    while backend.degraded:
        page = rng.randrange(pages)
        payload = bytes([rng.randrange(251)] * 16)
        system.memory.write(region.base + page * PAGE_SIZE, payload)
        shadow[page] = payload
        system.clock.advance(400)
        guard += 1
        assert guard < 5000, "resilver never converged under write load"
    second = rng.choice([i for i in range(3) if i != victim])
    nodes[second].fail()
    for page, payload in shadow.items():
        assert system.memory.read(region.base + page * PAGE_SIZE, 16) == \
            payload, f"{backend_kind}: page {page} wrong after sync race"


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_scrub_heals_random_rot(seed):
    """Flip random at-rest bytes on a mirror; the scrubber must find and
    repair every divergence, leaving the mirror able to serve the whole
    workload alone. Drives the backend directly (no kernel write cache)
    so the only thing that can heal the rot is the scrubber itself."""
    from repro.common.clock import Clock
    nodes = [MemoryNode(16 * MIB, name=f"m{i}") for i in range(2)]
    backend = ReplicatedMemory(nodes)
    clock = Clock()
    RepairManager(backend, clock, policy="scrub_period=500,scrub_batch=256")
    rng = random.Random(seed)
    pages = (2 * MIB) // PAGE_SIZE
    shadow = {}
    for page in range(pages):
        payload = bytes([page % 251] * 16)
        backend.write_bytes(page * PAGE_SIZE, payload)
        shadow[page] = payload
    # Inject rot straight into the mirror, under the backend's feet.
    rotted = rng.sample(range(nodes[1].capacity // PAGE_SIZE), 5)
    for row in rotted:
        offset = row * PAGE_SIZE + rng.randrange(PAGE_SIZE - 8)
        raw = nodes[1].read_bytes(offset, 8)
        nodes[1].write_bytes(offset, bytes(b ^ 0xFF for b in raw))
    # One full scrub pass over the extent visits every row.
    while backend.registry.value("scrub.passes") < 1:
        clock.advance(1000)
    assert backend.registry.value("scrub.repaired") == 5
    assert backend.registry.value("scrub.quarantined") == 0
    nodes[0].fail()  # the healed mirror serves everything
    for page, payload in shadow.items():
        assert backend.read_bytes(page * PAGE_SIZE, 16) == payload, \
            f"page {page} wrong after scrub healed the mirror"
