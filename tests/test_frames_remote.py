"""Unit tests for the frame pool and the memory node."""

import pytest

from repro.common.errors import OutOfMemoryError
from repro.common.units import KIB, PAGE_SIZE
from repro.mem.frames import FramePool
from repro.mem.remote import MemoryNode


class TestFramePool:
    def test_alloc_free_cycle(self):
        pool = FramePool(4)
        frames = [pool.alloc() for _ in range(4)]
        assert len(set(frames)) == 4
        assert pool.free_frames == 0
        with pytest.raises(OutOfMemoryError):
            pool.alloc()
        pool.free(frames[0])
        assert pool.free_frames == 1
        assert pool.alloc() == frames[0]

    def test_frames_zeroed_on_alloc(self):
        pool = FramePool(2)
        f = pool.alloc()
        pool.data(f)[:4] = b"dirt"
        pool.free(f)
        f2 = pool.alloc()
        assert f2 == f
        assert bytes(pool.data(f2)[:4]) == b"\x00" * 4

    def test_double_free_rejected(self):
        pool = FramePool(2)
        f = pool.alloc()
        pool.free(f)
        with pytest.raises(ValueError):
            pool.free(f)

    def test_data_of_unallocated_rejected(self):
        with pytest.raises(ValueError):
            FramePool(2).data(0)

    def test_out_of_range_free_rejected(self):
        with pytest.raises(ValueError):
            FramePool(2).free(5)

    def test_counts(self):
        pool = FramePool(8)
        pool.alloc()
        pool.alloc()
        assert pool.used_frames == 2
        assert pool.free_frames == 6


class TestMemoryNode:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            MemoryNode(100)  # not page-multiple
        with pytest.raises(ValueError):
            MemoryNode(0)

    def test_rw_roundtrip(self):
        node = MemoryNode(64 * KIB)
        node.write_bytes(1000, b"payload")
        assert node.read_bytes(1000, 7) == b"payload"

    def test_bounds_checked(self):
        node = MemoryNode(2 * PAGE_SIZE)
        with pytest.raises(ValueError):
            node.read_bytes(2 * PAGE_SIZE - 1, 2)
        with pytest.raises(ValueError):
            node.write_bytes(-1, b"x")

    def test_slot_allocation(self):
        node = MemoryNode(4 * PAGE_SIZE)
        slots = [node.alloc_slot() for _ in range(4)]
        assert len(set(slots)) == 4
        with pytest.raises(OutOfMemoryError):
            node.alloc_slot()
        node.free_slot(slots[0])
        assert node.free_slots == 1

    def test_slot_offsets_disjoint(self):
        node = MemoryNode(4 * PAGE_SIZE)
        a, b = node.alloc_slot(), node.alloc_slot()
        offs = {node.slot_offset(a), node.slot_offset(b)}
        assert len(offs) == 2
        for off in offs:
            assert off % PAGE_SIZE == 0

    def test_double_free_rejected(self):
        node = MemoryNode(4 * PAGE_SIZE)
        slot = node.alloc_slot()
        node.free_slot(slot)
        with pytest.raises(ValueError):
            node.free_slot(slot)
        assert node.free_slots == 4

    def test_free_of_never_allocated_slot_rejected(self):
        node = MemoryNode(4 * PAGE_SIZE)
        node.alloc_slot()
        with pytest.raises(ValueError):
            node.free_slot(3)  # in range, but still on the free list

    def test_double_free_cannot_alias_two_pages(self):
        """The original bug: a double free put the slot on the free list
        twice, so two later allocations shared one remote frame."""
        node = MemoryNode(4 * PAGE_SIZE)
        slots = [node.alloc_slot() for _ in range(4)]
        node.free_slot(slots[0])
        with pytest.raises(ValueError):
            node.free_slot(slots[0])
        a = node.alloc_slot()
        with pytest.raises(OutOfMemoryError):
            node.alloc_slot()  # the free list holds no phantom duplicate
        assert a == slots[0]

    def test_free_slot_still_bounds_checked(self):
        node = MemoryNode(4 * PAGE_SIZE)
        with pytest.raises(ValueError):
            node.free_slot(-1)
        with pytest.raises(ValueError):
            node.free_slot(4)

    def test_failure_injection(self):
        import pytest as _pytest
        from repro.mem.remote import NodeFailedError
        node = MemoryNode(4 * PAGE_SIZE, name="m0")
        node.write_bytes(0, b"alive")
        node.fail()
        assert node.failed
        with _pytest.raises(NodeFailedError):
            node.read_bytes(0, 5)
        with _pytest.raises(NodeFailedError):
            node.write_bytes(0, b"x")
        node.recover()
        assert node.read_bytes(0, 5) == b"alive"
