"""The replicated KV service: records, quorum, leases, the audit.

These are the unit-level contracts behind the chaos suite
(``tests/test_kv_chaos.py``) and the ``kv_failover`` golden scenario:
byte-exact record round-trips, write rejection without a quorum, the
split-brain blackout between a primary's death and its lease lapsing,
failover to the lowest-index *clean* member, and the lost-update audit
that the acceptance gate requires to read 0.
"""

import random

import pytest

from repro.apps.api import Request, SERVICES
from repro.apps.kvstore import (
    DEFAULT_LEASE_US,
    KvStoreService,
    build_kv_service,
)
from repro.common.units import MIB, PAGE_SIZE
from repro.harness import make_system


def boot(backend="replicated:3", repair=None, **kwargs):
    extra = {"repair": repair} if repair else {}
    return make_system("dilos-stride", local_bytes=1 * MIB,
                       remote_bytes=8 * MIB, backend=backend, **extra,
                       **kwargs)


def fresh_service(backend="replicated:3", repair=None, **kwargs):
    system = boot(backend=backend, repair=repair)
    return system, KvStoreService(system, **kwargs)


class TestConstruction:
    def test_requires_a_redundant_backend(self):
        system = make_system("dilos-stride", local_bytes=1 * MIB,
                             remote_bytes=8 * MIB)
        with pytest.raises(ValueError, match="redundant cluster backend"):
            KvStoreService(system)

    def test_sharded_backend_rejected(self):
        system = boot(backend="sharded:2")
        with pytest.raises(ValueError, match="redundant cluster backend"):
            KvStoreService(system)

    def test_lease_must_be_positive(self):
        system = boot()
        with pytest.raises(ValueError, match="lease_us"):
            KvStoreService(system, lease_us=0.0)

    def test_counters_preregistered_and_zero(self):
        system, service = fresh_service()
        counters = service.backend.metrics().counters
        for name in ("kv.gets", "kv.sets", "kv.failovers",
                     "kv.lost_updates", "kv.unavail_rejects"):
            assert counters[name] == 0
        assert service.backend.metrics().counters["kv.primary"] == -1.0

    def test_quorum_sizes(self):
        _, replicated = fresh_service("replicated:3")
        assert replicated.write_quorum == 2
        _, parity = fresh_service("parity:2+1")
        assert parity.write_quorum == 2
        # Parity's candidates are the data members only: the parity
        # member holds XOR blocks, not records, so it can never front.
        assert parity._candidates == [0, 1]

    def test_registered_as_a_service_kind(self):
        assert "kv" in SERVICES.kinds()


class TestRecordRoundTrip:
    def test_set_then_get_byte_exact(self):
        _, service = fresh_service()
        value = bytes(range(200))
        assert service.handle(Request("set", key=b"a", value=value)).ok
        response = service.handle(Request("get", key=b"a"))
        assert response.ok and response.value == value

    def test_get_missing_key_is_a_miss(self):
        system, service = fresh_service()
        response = service.handle(Request("get", key=b"ghost"))
        assert not response.ok
        assert service.backend.metrics().counters["kv.misses"] == 1

    def test_overwrite_bumps_the_version(self):
        _, service = fresh_service()
        service.handle(Request("set", key=b"a", value=b"one"))
        service.handle(Request("set", key=b"a", value=b"two longer"))
        assert service._versions[b"a"] == 2
        response = service.handle(Request("get", key=b"a"))
        assert response.value == b"two longer"

    def test_delete_tombstones_but_keeps_the_version_chain(self):
        _, service = fresh_service()
        service.handle(Request("set", key=b"a", value=b"one"))
        assert service.handle(Request("del", key=b"a")).value is True
        assert not service.handle(Request("get", key=b"a")).ok
        # A re-set continues the chain past the tombstone, so the audit
        # can never mistake the new record for a regression.
        service.handle(Request("set", key=b"a", value=b"three"))
        assert service._versions[b"a"] == 3
        assert service.handle(Request("get", key=b"a")).value == b"three"

    def test_delete_of_missing_key_reports_false(self):
        _, service = fresh_service()
        assert service.handle(Request("del", key=b"nope")).value is False

    def test_oversized_value_rejected(self):
        _, service = fresh_service()
        response = service.handle(
            Request("set", key=b"big", value=b"x" * PAGE_SIZE))
        assert not response.ok and "record limit" in response.error

    def test_unknown_op_rejected(self):
        _, service = fresh_service()
        assert not service.handle(Request("incr", key=b"a")).ok


class TestQuorum:
    def test_writes_rejected_below_quorum_reads_survive(self):
        system, service = fresh_service()
        service.handle(Request("set", key=b"a", value=b"payload"))
        # Kill two non-primary replicas: one live member < quorum of 2.
        for node in service.backend.member_nodes()[1:]:
            node.fail()
        response = service.handle(Request("set", key=b"a", value=b"new"))
        assert not response.ok and "quorum" in response.error
        assert service.backend.metrics().counters["kv.rejected_writes"] == 1
        assert service.handle(Request("get", key=b"a")).value == b"payload"

    def test_delete_needs_quorum_too(self):
        _, service = fresh_service()
        service.handle(Request("set", key=b"a", value=b"payload"))
        for node in service.backend.member_nodes()[1:]:
            node.fail()
        assert not service.handle(Request("del", key=b"a")).ok
        assert service.handle(Request("get", key=b"a")).value == b"payload"


class TestLeaseAndFailover:
    def test_first_request_elects_lowest_member(self):
        system, service = fresh_service(lease_us=100.0)
        service.handle(Request("set", key=b"a", value=b"v"))
        assert service._primary == 0
        assert service.backend.metrics().counters["kv.failovers"] == 0

    def test_blackout_until_the_lease_lapses(self):
        system, service = fresh_service(lease_us=100.0)
        service.handle(Request("set", key=b"a", value=b"v"))
        service.backend.member_nodes()[0].fail()
        # The holder is dead but its lease has not provably lapsed:
        # nobody may serve — not even reads.
        response = service.handle(Request("get", key=b"a"))
        assert not response.ok and "unavailable" in response.error
        counters = service.backend.metrics().counters
        assert counters["kv.unavail_rejects"] == 1
        assert counters["kv.failovers"] == 0
        system.clock.advance(200.0)
        assert service.handle(Request("get", key=b"a")).value == b"v"
        counters = service.backend.metrics().counters
        assert counters["kv.failovers"] == 1
        assert counters["kv.failover_us"] > 0
        assert counters["kv.unavail_us"] >= counters["kv.failover_us"]
        assert service._primary == 1

    def test_holder_recovering_within_its_lease_resumes(self):
        system, service = fresh_service(lease_us=1000.0)
        service.handle(Request("set", key=b"a", value=b"v"))
        node = service.backend.member_nodes()[0]
        node.fail()
        service.backend.rejoin(node)  # journal clean: back in service
        assert service.handle(Request("get", key=b"a")).ok
        assert service._primary == 0
        assert service.backend.metrics().counters["kv.failovers"] == 0

    def test_lease_renewed_while_serving(self):
        system, service = fresh_service(lease_us=50.0)
        for i in range(6):
            service.handle(Request("set", key=b"k%d" % i, value=b"v"))
            system.clock.advance(30.0)
        counters = service.backend.metrics().counters
        assert counters["kv.lease_renewals"] >= 1
        assert counters["kv.failovers"] == 0

    def test_resilvering_member_skipped_at_election(self):
        system, service = fresh_service(
            repair="resilver_period=5000,resilver_batch=1", lease_us=100.0)
        backend = service.backend
        service.handle(Request("set", key=b"a", value=b"v"))
        victim = backend.member_nodes()[0]
        victim.fail()
        system.clock.advance(200.0)
        # m1 takes over and writes while m0 is down: m0's journal dirties.
        service.handle(Request("set", key=b"a", value=b"while-down"))
        assert service._primary == 1
        backend.rejoin(victim)  # long resilver period: m0 stays syncing
        backend.member_nodes()[1].fail()
        system.clock.advance(200.0)
        assert service.handle(Request("get", key=b"a")).value == b"while-down"
        assert service._primary == 2
        assert service.backend.metrics().counters["kv.stale_candidates_skipped"] >= 1

    def test_holder_back_but_syncing_hands_the_lease_off(self):
        system, service = fresh_service(
            repair="resilver_period=5000,resilver_batch=1", lease_us=100.0)
        backend = service.backend
        service.handle(Request("set", key=b"a", value=b"v"))
        victim = backend.member_nodes()[0]
        victim.fail()
        system.clock.advance(200.0)
        service.handle(Request("set", key=b"a", value=b"while-down"))
        backend.rejoin(victim)
        # m0 recovered mid-resilver; m1 already holds the lease. Now let
        # m1 die and lapse — m0 is alive but stale, so m2 must win.
        assert service._primary == 1
        backend.member_nodes()[1].fail()
        system.clock.advance(200.0)
        assert service.handle(Request("get", key=b"a")).value == b"while-down"
        assert service._primary == 2

    def test_no_live_clean_candidate_means_unavailable(self):
        system, service = fresh_service(lease_us=50.0)
        service.handle(Request("set", key=b"a", value=b"v"))
        for node in service.backend.member_nodes():
            node.fail()
        system.clock.advance(200.0)
        assert not service.handle(Request("get", key=b"a")).ok
        assert service._primary is None
        assert service.backend.metrics().counters["kv.primary"] == -1.0


class TestAudit:
    def corrupt(self, service, key, header):
        offset = service.backend.slot_offset(service._slots[key])
        length = service._lengths[key]
        value = service.backend.read_bytes(
            offset + 12, length) if length else b""
        service.backend.write_bytes(offset, header + bytes(value))

    def test_version_regression_is_a_lost_update(self):
        system, service = fresh_service()
        service.handle(Request("set", key=b"a", value=b"one"))
        service.handle(Request("set", key=b"a", value=b"two"))
        # Roll the stored record back behind the service's bookkeeping:
        # exactly what a resilver bug or stale rejoin would produce.
        from repro.apps.kvstore import _pack_header
        from zlib import crc32
        stale = _pack_header(1, 3, crc32(b"one") & 0xFFFFFFFF)
        offset = service.backend.slot_offset(service._slots[b"a"])
        service.backend.write_bytes(offset, stale + b"one")
        response = service.handle(Request("get", key=b"a"))
        assert not response.ok and "lost update" in response.error
        assert service.backend.metrics().counters["kv.lost_updates"] == 1
        assert service.verify() == 1

    def test_verify_clean_after_failover(self):
        system, service = fresh_service(lease_us=50.0)
        rng = random.Random(7)
        for i in range(12):
            service.handle(Request("set", key=b"k%d" % i,
                                   value=bytes(rng.randrange(256)
                                               for _ in range(64))))
        victim = service.backend.member_nodes()[0]
        victim.fail()
        system.clock.advance(200.0)
        for i in range(12):
            service.handle(Request("set", key=b"k%d" % i, value=b"post"))
        service.backend.rejoin(victim)
        assert service.verify() == 0
        assert service.backend.metrics().counters["kv.lost_updates"] == 0


class TestSamplerAndFactory:
    def test_build_populates_through_the_write_path(self):
        system = boot()
        service = build_kv_service(system, n_keys=16, value_bytes=64)
        counters = service.backend.metrics().counters
        assert counters["kv.sets"] == 16
        assert service.backend.metrics().counters["kv.keys"] == 16.0
        assert service.handle(Request("get", key=b"kv:7")).ok

    def test_sampler_needs_a_keyspace(self):
        _, service = fresh_service()
        with pytest.raises(ValueError, match="populated keyspace"):
            service.sample_request(random.Random(1))

    def test_sampler_is_deterministic(self):
        system = boot()
        service = build_kv_service(system, n_keys=16, skew=0.9,
                                   write_fraction=0.3)
        draws = [service.sample_request(random.Random(5)) for _ in range(2)]
        assert draws[0] == draws[1]

    def test_sampler_respects_write_fraction_zero(self):
        system = boot()
        service = build_kv_service(system, n_keys=8, write_fraction=0.0)
        rng = random.Random(3)
        assert all(service.sample_request(rng).op == "get"
                   for _ in range(50))

    def test_registry_build_by_kind(self):
        system = boot()
        service = SERVICES.build("kv", system, n_keys=4)
        assert service.name == "kv"
        assert service.lease_us == DEFAULT_LEASE_US
