"""Unit + property tests for the mimalloc-style allocator and its guide."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import OutOfMemoryError
from repro.common.units import MIB, PAGE_SIZE
from repro.alloc.mimalloc import (
    GRANULE,
    Mimalloc,
    MimallocGuide,
    SIZE_CLASSES,
    size_class_for,
)
from repro.core import DilosConfig, DilosSystem


def make_system(local_mib=8, remote_mib=64):
    return DilosSystem(DilosConfig(local_mem_bytes=local_mib * MIB,
                                   remote_mem_bytes=remote_mib * MIB))


@pytest.fixture()
def alloc():
    return Mimalloc(make_system(), arena_bytes=4 * MIB)


class TestSizeClasses:
    def test_exact_class(self):
        assert size_class_for(16) == 16
        assert size_class_for(2048) == 2048

    def test_rounding_up(self):
        assert size_class_for(17) == 32
        assert size_class_for(100) == 128

    def test_large_rejected(self):
        with pytest.raises(ValueError):
            size_class_for(4096)

    def test_classes_sorted(self):
        assert list(SIZE_CLASSES) == sorted(SIZE_CLASSES)


class TestMalloc:
    def test_basic_roundtrip(self, alloc):
        va = alloc.malloc(100)
        assert alloc.allocation_size(va) == 100
        alloc.free(va)
        assert alloc.allocation_size(va) is None

    def test_distinct_addresses(self, alloc):
        vas = [alloc.malloc(64) for _ in range(100)]
        assert len(set(vas)) == 100

    def test_same_class_same_page_until_full(self, alloc):
        slots = PAGE_SIZE // 64
        vas = [alloc.malloc(64) for _ in range(slots)]
        pages = {va >> 12 for va in vas}
        assert len(pages) == 1
        extra = alloc.malloc(64)
        assert (extra >> 12) not in pages

    def test_no_overlap_across_classes(self, alloc):
        spans = []
        for size in [16, 100, 1000, 5000, 20000]:
            va = alloc.malloc(size)
            spans.append((va, va + size))
        spans.sort()
        for (a_start, a_end), (b_start, b_end) in zip(spans, spans[1:]):
            assert a_end <= b_start

    def test_large_allocation_page_aligned(self, alloc):
        va = alloc.malloc(3 * PAGE_SIZE + 7)
        assert va % PAGE_SIZE == 0

    def test_free_recycles_empty_page(self, alloc):
        va = alloc.malloc(2048)
        page = va >> 12
        va2 = alloc.malloc(2048)
        assert (va2 >> 12) == page  # same class page, two slots
        alloc.free(va)
        alloc.free(va2)
        va3 = alloc.malloc(512)  # different class reuses recycled page
        assert (va3 >> 12) == page

    def test_double_free_rejected(self, alloc):
        va = alloc.malloc(32)
        alloc.free(va)
        with pytest.raises(ValueError):
            alloc.free(va)

    def test_nonpositive_rejected(self, alloc):
        with pytest.raises(ValueError):
            alloc.malloc(0)

    def test_arena_exhaustion(self):
        alloc = Mimalloc(make_system(), arena_bytes=2 * PAGE_SIZE)
        alloc.malloc(PAGE_SIZE)
        alloc.malloc(2048)
        with pytest.raises(OutOfMemoryError):
            alloc.malloc(PAGE_SIZE)

    def test_accounting(self, alloc):
        a = alloc.malloc(100)
        b = alloc.malloc(200)
        assert alloc.allocated_bytes == 300
        assert alloc.live_allocations == 2
        alloc.free(a)
        assert alloc.allocated_bytes == 200
        alloc.free(b)
        assert alloc.allocated_bytes == 0


class TestLiveRanges:
    def test_foreign_page_is_none(self, alloc):
        assert alloc.live_ranges(1) is None

    def test_untouched_arena_page_empty(self, alloc):
        vpn = alloc.region.base >> 12
        assert alloc.live_ranges(vpn) == []

    def test_small_allocation_covered(self, alloc):
        va = alloc.malloc(64)
        vpn = va >> 12
        ranges = alloc.live_ranges(vpn)
        offset = va & (PAGE_SIZE - 1)
        assert any(start <= offset and offset + 64 <= start + length
                   for start, length in ranges)

    def test_free_clears_ranges(self, alloc):
        va = alloc.malloc(256)
        vpn = va >> 12
        alloc.free(va)
        assert alloc.live_ranges(vpn) == []

    def test_granule_rounding(self, alloc):
        # A 48-byte class object covers exactly 3 granules.
        va = alloc.malloc(40)
        vpn = va >> 12
        total = sum(length for _start, length in alloc.live_ranges(vpn))
        assert total == 48

    def test_large_allocation_spans_pages(self, alloc):
        va = alloc.malloc(PAGE_SIZE + 100)
        first, second = va >> 12, (va >> 12) + 1
        assert alloc.live_ranges(first) == [(0, PAGE_SIZE)]
        [(start, length)] = alloc.live_ranges(second)
        assert start == 0
        assert length == ((100 + GRANULE - 1) // GRANULE) * GRANULE

    def test_guide_delegates(self, alloc):
        guide = MimallocGuide(alloc)
        va = alloc.malloc(64)
        assert guide.live_ranges(va >> 12) == alloc.live_ranges(va >> 12)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=8000), min_size=1,
                max_size=60))
def test_allocations_never_overlap_property(sizes):
    alloc = Mimalloc(make_system(), arena_bytes=8 * MIB)
    spans = []
    for size in sizes:
        va = alloc.malloc(size)
        spans.append((va, va + size))
    spans.sort()
    for (a_start, a_end), (b_start, b_end) in zip(spans, spans[1:]):
        assert a_end <= b_start, "allocations overlap"


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=4000), min_size=1,
                max_size=40), st.randoms())
def test_live_bytes_match_bitmaps_property(sizes, rng):
    """Sum of live ranges always >= live bytes, and 0 when all freed."""
    alloc = Mimalloc(make_system(), arena_bytes=8 * MIB)
    vas = [alloc.malloc(size) for size in sizes]
    arena_pages = range(alloc.region.base >> 12, (alloc.region.end - 1 >> 12) + 1)

    def total_live():
        return sum(sum(r[1] for r in (alloc.live_ranges(vpn) or []))
                   for vpn in arena_pages)

    assert total_live() >= alloc.allocated_bytes
    order = list(range(len(vas)))
    rng.shuffle(order)
    for index in order:
        alloc.free(vas[index])
    assert total_live() == 0
