"""The online repair subsystem: journal, rejoin, resilver, scrub.

The stale-rejoin bug these tests pin down: the redundant cluster
backends keep accepting writes while a member is down, but a member
that merely called ``MemoryNode.recover()`` used to go straight back on
the read path with its pre-crash contents — a later failure of the
surviving copy (or any ordinary read of a rejoined data node) silently
returned old bytes. The regression tests here exercise exactly those
sequences; they fail on the pre-repair code and pass now because the
repair journal keeps stale ranges off the read path until the resilver
has replayed them.
"""

import pytest

from repro.common.clock import Clock
from repro.common.units import MIB, PAGE_SIZE
from repro.core import DilosConfig, DilosSystem
from repro.mem.cluster import (
    ParityStripedMemory,
    ReplicatedMemory,
    ShardedMemory,
)
from repro.mem.remote import MemoryNode, NodeFailedError
from repro.mem.repair import (
    RepairJournal,
    RepairManager,
    RepairPolicy,
    coerce_repair_policy,
)


def make_nodes(n, capacity=4 * MIB):
    return [MemoryNode(capacity, name=f"m{i}") for i in range(n)]


class TestRepairJournal:
    def test_record_marks_every_overlapping_page(self):
        journal = RepairJournal()
        journal.record_range(0, PAGE_SIZE - 10, 20)  # straddles pages 0/1
        assert journal.dirty_pages(0) == [0, 1]
        assert journal.is_dirty(0, 0, 1)
        assert journal.is_dirty(0, PAGE_SIZE, 1)
        assert not journal.is_dirty(0, 2 * PAGE_SIZE, PAGE_SIZE)

    def test_members_are_independent(self):
        journal = RepairJournal()
        journal.record_range(0, 0, PAGE_SIZE)
        journal.record_range(2, 0, PAGE_SIZE)
        assert journal.is_dirty(0, 0, 1) and journal.is_dirty(2, 0, 1)
        assert not journal.is_dirty(1, 0, 1)
        assert journal.members() == [0, 2]
        assert journal.total_dirty() == 2

    def test_partial_write_does_not_clean_a_page(self):
        journal = RepairJournal()
        journal.record_range(0, 0, PAGE_SIZE)
        journal.clear_covered(0, 0, 64)  # partial: the rest is still stale
        assert journal.is_dirty(0, 0, PAGE_SIZE)
        journal.clear_covered(0, 0, PAGE_SIZE)  # full page: clean
        assert not journal.is_dirty(0, 0, PAGE_SIZE)
        assert journal.total_dirty() == 0

    def test_clear_covered_only_drops_fully_covered_pages(self):
        journal = RepairJournal()
        journal.record_range(0, 0, 3 * PAGE_SIZE)
        # Covers page 1 fully, pages 0 and 2 only partially.
        journal.clear_covered(0, PAGE_SIZE // 2, 2 * PAGE_SIZE)
        assert journal.dirty_pages(0) == [0, 2]

    def test_clear_page_and_member(self):
        journal = RepairJournal()
        journal.record_range(1, 0, 2 * PAGE_SIZE)
        journal.clear_page(1, 0)
        assert journal.dirty_pages(1) == [1]
        journal.clear_member(1)
        assert journal.total_dirty() == 0
        journal.clear_page(1, 5)  # clearing a clean member is a no-op

    def test_zero_size_is_ignored(self):
        journal = RepairJournal()
        journal.record_range(0, 0, 0)
        assert journal.total_dirty() == 0
        assert not journal.is_dirty(0, 0, 0)


class TestRepairPolicy:
    def test_spec_round_trip(self):
        policy = RepairPolicy.from_spec(
            "resilver_period=100,resilver_batch=4,"
            "scrub_period=5000,scrub_batch=32")
        assert policy.resilver_period_us == 100.0
        assert policy.resilver_batch_pages == 4
        assert policy.scrub_period_us == 5000.0
        assert policy.scrub_batch_pages == 32

    def test_empty_spec_is_defaults(self):
        assert RepairPolicy.from_spec("") == RepairPolicy()

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            RepairPolicy.from_spec("resilver_period")
        with pytest.raises(ValueError):
            RepairPolicy.from_spec("bogus_knob=3")
        with pytest.raises(ValueError):
            RepairPolicy.from_spec("resilver_batch=lots")
        with pytest.raises(ValueError):
            RepairPolicy.from_spec("resilver_period=0")
        with pytest.raises(ValueError):
            RepairPolicy.from_spec("scrub_period=-1")

    def test_coercion(self):
        assert coerce_repair_policy(None) is None
        policy = RepairPolicy(scrub_period_us=123.0)
        assert coerce_repair_policy(policy) is policy
        assert coerce_repair_policy(
            {"resilver_batch_pages": 2}).resilver_batch_pages == 2
        assert coerce_repair_policy(
            "scrub_period=9").scrub_period_us == 9.0
        with pytest.raises(TypeError):
            coerce_repair_policy(42)


class TestReplicatedRejoin:
    def test_raw_recover_never_serves_stale_bytes(self):
        """The seed bug, exact sequence: mirror down -> degraded writes ->
        bare ``recover()`` -> primary down -> read. The seed returned the
        mirror's pre-crash bytes; now the journal keeps the range off the
        read path (no clean copy exists, so the read raises)."""
        nodes = make_nodes(2)
        backend = ReplicatedMemory(nodes)
        backend.write_bytes(0, b"A" * PAGE_SIZE)
        nodes[1].fail()
        backend.write_bytes(0, b"B" * PAGE_SIZE)
        nodes[1].recover()  # bypasses rejoin() entirely
        nodes[0].fail()
        with pytest.raises(NodeFailedError):
            backend.read_bytes(0, 64)
        assert backend.counters.get("stale_reads_avoided") > 0

    def test_reads_prefer_clean_replica_over_stale_one(self):
        nodes = make_nodes(2)
        backend = ReplicatedMemory(nodes)
        backend.write_bytes(0, b"A" * PAGE_SIZE)
        nodes[0].fail()
        backend.write_bytes(0, b"B" * PAGE_SIZE)  # only the mirror has B
        nodes[0].recover()
        # The stale primary is up, but the read must come from the mirror.
        assert backend.read_bytes(0, 64) == b"B" * 64
        assert backend.counters.get("stale_reads_avoided") == 1

    def test_rejoin_without_manager_resilvers_synchronously(self):
        nodes = make_nodes(2)
        backend = ReplicatedMemory(nodes)
        backend.write_bytes(0, b"A" * PAGE_SIZE)
        backend.write_bytes(PAGE_SIZE, b"C" * PAGE_SIZE)
        nodes[1].fail()
        backend.write_bytes(0, b"B" * PAGE_SIZE)
        assert backend.stale_slots == 1 and backend.degraded
        assert backend.rejoin(nodes[1]) is True
        assert backend.stale_slots == 0 and not backend.degraded
        nodes[0].fail()
        assert backend.read_bytes(0, 64) == b"B" * 64
        assert backend.read_bytes(PAGE_SIZE, 64) == b"C" * 64
        assert backend.counters.get("rejoins") == 1

    def test_background_resilver_is_paced_on_the_clock(self):
        nodes = make_nodes(2)
        backend = ReplicatedMemory(nodes)
        clock = Clock()
        RepairManager(backend, clock,
                      policy="resilver_period=100,resilver_batch=2")
        for page in range(8):
            backend.write_bytes(page * PAGE_SIZE, b"A" * PAGE_SIZE)
        nodes[1].fail()
        for page in range(8):
            backend.write_bytes(page * PAGE_SIZE, bytes([page]) * PAGE_SIZE)
        assert backend.stale_slots == 8
        assert backend.rejoin(nodes[1]) is False  # async: still syncing
        assert backend.syncing_members() == [1]
        clock.advance(100)  # one tick, batch=2
        assert backend.stale_slots == 6
        clock.advance(250)  # two more ticks
        assert backend.stale_slots == 2
        clock.advance(100)
        assert backend.stale_slots == 0
        assert backend.syncing_members() == []
        assert backend.registry.value("repair.pages_resilvered") == 8
        assert backend.registry.value("repair.nodes_promoted") == 1
        # Every byte is on the mirror now: primary can die.
        nodes[0].fail()
        for page in range(8):
            assert backend.read_bytes(page * PAGE_SIZE, 32) == \
                bytes([page]) * 32

    def test_resilver_charges_wire_time_on_its_own_qp(self):
        nodes = make_nodes(2)
        backend = ReplicatedMemory(nodes)
        clock = Clock()
        manager = RepairManager(backend, clock,
                                policy="resilver_period=100")
        backend.write_bytes(0, b"A" * PAGE_SIZE)
        nodes[1].fail()
        backend.write_bytes(0, b"B" * PAGE_SIZE)
        backend.rejoin(nodes[1])
        clock.advance(200)
        assert manager.net.bytes_read == PAGE_SIZE
        assert manager.net.bytes_written == PAGE_SIZE

    def test_write_during_sync_cleans_fully_covered_pages(self):
        nodes = make_nodes(2)
        backend = ReplicatedMemory(nodes)
        clock = Clock()
        RepairManager(backend, clock,
                      policy="resilver_period=100,resilver_batch=1")
        backend.write_bytes(0, b"A" * (2 * PAGE_SIZE))
        nodes[1].fail()
        backend.write_bytes(0, b"B" * (2 * PAGE_SIZE))
        backend.rejoin(nodes[1])
        assert backend.stale_slots == 2
        # A full-page write-through freshens page 1 without the resilver.
        backend.write_bytes(PAGE_SIZE, b"C" * PAGE_SIZE)
        assert backend.stale_slots == 1
        # A partial write cannot clean page 0: the rest is still stale.
        backend.write_bytes(0, b"D" * 64)
        assert backend.stale_slots == 1
        clock.advance(200)
        assert backend.stale_slots == 0
        nodes[0].fail()
        assert backend.read_bytes(0, 128) == b"D" * 64 + b"B" * 64
        assert backend.read_bytes(PAGE_SIZE, 64) == b"C" * 64

    def test_failed_write_is_not_journaled(self):
        nodes = make_nodes(2)
        backend = ReplicatedMemory(nodes)
        for node in nodes:
            node.fail()
        with pytest.raises(NodeFailedError):
            backend.write_bytes(0, b"X" * 64)
        assert backend.stale_slots == 0  # nothing changed, nothing stale

    def test_resilver_stalls_without_a_clean_source(self):
        nodes = make_nodes(2)
        backend = ReplicatedMemory(nodes)
        clock = Clock()
        RepairManager(backend, clock, policy="resilver_period=100")
        backend.write_bytes(0, b"A" * PAGE_SIZE)
        nodes[1].fail()
        backend.write_bytes(0, b"B" * PAGE_SIZE)
        backend.rejoin(nodes[1])
        nodes[0].fail()  # the only clean source is gone
        clock.advance(300)
        assert backend.stale_slots == 1  # stalled, not falsely promoted
        assert backend.registry.value("repair.source_stalls") > 0
        nodes[0].recover()  # primary never missed a write: clean rejoin
        assert backend.rejoin(nodes[0]) is True
        clock.advance(200)
        assert backend.stale_slots == 0
        nodes[0].fail()
        assert backend.read_bytes(0, 64) == b"B" * 64

    def test_syncing_member_that_dies_again_stops_syncing(self):
        nodes = make_nodes(2)
        backend = ReplicatedMemory(nodes)
        clock = Clock()
        RepairManager(backend, clock,
                      policy="resilver_period=100,resilver_batch=1")
        backend.write_bytes(0, b"A" * (4 * PAGE_SIZE))
        nodes[1].fail()
        backend.write_bytes(0, b"B" * (4 * PAGE_SIZE))
        backend.rejoin(nodes[1])
        clock.advance(100)
        nodes[1].fail()  # dies mid-resilver
        assert backend.syncing_members() == []
        remaining = backend.stale_slots
        assert remaining > 0
        clock.advance(1000)  # no progress while it is down
        assert backend.stale_slots == remaining
        backend.rejoin(nodes[1])
        clock.advance(1000)
        assert backend.stale_slots == 0


class TestParityRejoin:
    def test_raw_recover_never_serves_stale_bytes(self):
        """The seed bug on the parity backend: degraded writes land in
        parity only; after a bare ``recover()`` the seed served the data
        node's pre-crash bytes directly. Now the journal routes the read
        through reconstruction, which yields the fresh bytes."""
        nodes = make_nodes(3)
        backend = ParityStripedMemory(nodes)
        backend.write_bytes(0, b"A" * PAGE_SIZE)
        nodes[0].fail()
        backend.write_bytes(0, b"B" * PAGE_SIZE)  # degraded: parity only
        assert backend.counters.get("degraded_writes") == 1
        nodes[0].recover()  # bypasses rejoin() entirely
        assert backend.read_bytes(0, 64) == b"B" * 64
        assert backend.counters.get("stale_reads_avoided") > 0

    def test_rejoin_then_second_failure_reads_correctly(self):
        nodes = make_nodes(3)
        backend = ParityStripedMemory(nodes)
        k = backend.k
        for page in range(6):
            backend.write_bytes(page * PAGE_SIZE, bytes([page + 1]) * 64)
        nodes[0].fail()
        for page in range(6):
            backend.write_bytes(page * PAGE_SIZE, bytes([page + 100]) * 64)
        assert backend.stale_slots == 6 // k
        assert backend.rejoin(nodes[0]) is True  # synchronous resilver
        assert backend.stale_slots == 0
        nodes[1].fail()  # a *different* data node
        for page in range(6):
            assert backend.read_bytes(page * PAGE_SIZE, 64) == \
                bytes([page + 100]) * 64

    def test_stale_page_unreadable_when_reconstruction_impossible(self):
        nodes = make_nodes(3)
        backend = ParityStripedMemory(nodes)
        clock = Clock()
        RepairManager(backend, clock, policy="resilver_period=100")
        backend.write_bytes(0, b"A" * 64)
        nodes[0].fail()
        backend.write_bytes(0, b"B" * 64)
        backend.rejoin(nodes[0])  # syncing; resilver has not run yet
        nodes[-1].fail()  # parity gone: page 0's only truth is gone
        with pytest.raises(NodeFailedError):
            backend.read_bytes(0, 64)

    def test_parity_node_rejoin_recomputes_parity(self):
        nodes = make_nodes(3)
        backend = ParityStripedMemory(nodes)
        backend.write_bytes(0, b"A" * PAGE_SIZE)
        nodes[-1].fail()  # parity down
        backend.write_bytes(0, b"B" * PAGE_SIZE)
        assert backend.counters.get("parity_writes_skipped") == 1
        assert backend.stale_slots == 1  # the parity row is stale
        assert backend.rejoin(nodes[-1]) is True
        assert backend.stale_slots == 0
        nodes[0].fail()  # parity must now reconstruct the fresh bytes
        assert backend.read_bytes(0, 64) == b"B" * 64

    def test_degraded_write_with_parity_down_raises(self):
        """Two unavailable members = the write cannot be made durable;
        it must fail loudly, and nothing may be journaled for it."""
        nodes = make_nodes(3)
        backend = ParityStripedMemory(nodes)
        backend.write_bytes(0, b"A" * 64)
        nodes[0].fail()
        nodes[-1].fail()
        with pytest.raises(NodeFailedError):
            backend.write_bytes(0, b"B" * 64)
        assert backend.stale_slots == 0

    def test_write_during_sync_repairs_the_page_inline(self):
        nodes = make_nodes(3)
        backend = ParityStripedMemory(nodes)
        clock = Clock()
        RepairManager(backend, clock,
                      policy="resilver_period=1000,resilver_batch=1")
        backend.write_bytes(0, b"A" * PAGE_SIZE)
        nodes[0].fail()
        backend.write_bytes(0, b"B" * PAGE_SIZE)
        backend.rejoin(nodes[0])
        assert backend.stale_slots == 1
        # A full-page write-through while syncing makes the page clean
        # before the resilver ever reaches it.
        backend.write_bytes(0, b"C" * PAGE_SIZE)
        assert backend.stale_slots == 0
        assert backend.counters.get("sync_writes") == 1
        nodes[1].fail()
        assert backend.read_bytes(0, 64) == b"C" * 64


class TestScrub:
    def test_replicated_scrub_repairs_bit_rot(self):
        nodes = make_nodes(2)
        backend = ReplicatedMemory(nodes)
        clock = Clock()
        RepairManager(backend, clock,
                      policy="scrub_period=100,scrub_batch=2048")
        backend.write_bytes(0, b"A" * PAGE_SIZE)
        # At-rest divergence on the mirror (never goes through the
        # backend's write path, like a real flipped bit).
        nodes[1].write_bytes(10, b"\x77")
        clock.advance(100)
        assert backend.registry.value("scrub.mismatches") == 1
        assert backend.registry.value("scrub.repaired") == 1
        nodes[0].fail()
        assert backend.read_bytes(0, 64) == b"A" * 64  # mirror healed

    def test_parity_scrub_restores_the_invariant(self):
        nodes = make_nodes(3)
        backend = ParityStripedMemory(nodes)
        clock = Clock()
        RepairManager(backend, clock,
                      policy="scrub_period=100,scrub_batch=2048")
        backend.write_bytes(0, b"A" * PAGE_SIZE)
        corrupt = bytes(b ^ 0xFF for b in
                        nodes[-1].read_bytes(0, 32))
        nodes[-1].write_bytes(0, corrupt)
        clock.advance(100)
        assert backend.registry.value("scrub.repaired") == 1
        nodes[0].fail()  # reconstruction relies on the healed parity
        assert backend.read_bytes(0, 64) == b"A" * 64

    def test_scrub_quarantines_when_the_repair_write_fails(self):
        class ReadOnlyNode(MemoryNode):
            """Alive for reads, but every write fails — the repair
            cannot land, so the scrubber must quarantine instead."""
            read_only = False

            def write_bytes(self, offset, data):
                if self.read_only:
                    raise NodeFailedError(f"{self.name} rejects writes")
                super().write_bytes(offset, data)

        nodes = [MemoryNode(4 * MIB, name="m0"),
                 ReadOnlyNode(4 * MIB, name="m1")]
        backend = ReplicatedMemory(nodes)
        clock = Clock()
        RepairManager(backend, clock,
                      policy="scrub_period=100,scrub_batch=2048")
        backend.write_bytes(0, b"A" * PAGE_SIZE)
        MemoryNode.write_bytes(nodes[1], 10, b"\x77")  # rot the mirror
        nodes[1].read_only = True
        clock.advance(100)
        assert backend.registry.value("scrub.quarantined") == 1
        assert backend.registry.value("scrub.repaired") == 0
        # Quarantined = journaled: reads never touch the rotted copy.
        nodes[0].fail()
        with pytest.raises(NodeFailedError):
            backend.read_bytes(0, 64)

    def test_scrub_skips_rows_with_an_absent_member(self):
        nodes = make_nodes(3)
        backend = ParityStripedMemory(nodes)
        backend.write_bytes(0, b"A" * PAGE_SIZE)
        nodes[1].fail()
        report = backend.scrub_page(0)
        assert report.members_checked == 0
        assert report.mismatches == 0

    def test_scrub_counts_full_passes(self):
        nodes = make_nodes(2, capacity=4 * PAGE_SIZE)
        backend = ReplicatedMemory(nodes)
        clock = Clock()
        RepairManager(backend, clock,
                      policy="scrub_period=100,scrub_batch=4")
        clock.advance(250)  # two full batches over a 4-row extent
        assert backend.registry.value("scrub.passes") == 2
        assert backend.registry.value("scrub.pages_checked") == 16

    def test_stop_scrub_lets_the_timer_lapse(self):
        nodes = make_nodes(2, capacity=4 * PAGE_SIZE)
        backend = ReplicatedMemory(nodes)
        clock = Clock()
        manager = RepairManager(backend, clock,
                                policy="scrub_period=100,scrub_batch=4")
        clock.advance(150)
        checked = backend.registry.value("scrub.pages_checked")
        assert checked > 0
        manager.stop_scrub()
        clock.advance(1000)
        assert backend.registry.value("scrub.pages_checked") == checked


class TestShardedRejoin:
    def test_rejoin_is_recover_plus_bookkeeping(self):
        nodes = make_nodes(2)
        backend = ShardedMemory(nodes)
        backend.write_bytes(0, b"A" * 64)
        nodes[0].fail()
        assert backend.degraded
        assert backend.rejoin(nodes[0]) is True
        assert not backend.degraded
        assert backend.counters.get("rejoins") == 1
        assert backend.read_bytes(0, 64) == b"A" * 64  # content survived

    def test_no_redundancy_means_no_resilver_and_no_scrub(self):
        backend = ShardedMemory(make_nodes(2))
        assert backend.resilver_page(0, 0) == -1
        assert backend.scrub_extent == 0


class TestRejoinIdempotency:
    """Regression: ``rejoin()`` on a member already resilvering must be
    idempotent.

    Before the fix a second ``rejoin()`` mid-resilver re-counted the
    rejoin and re-notified the manager; an impatient caller (or a
    flapping health checker firing rejoin on every probe) inflated
    ``cluster.rejoins`` and could re-arm the resilver clock. Pinned
    ``repair.*`` metrics prove the journal is replayed exactly once.
    """

    def test_double_rejoin_mid_resilver_pins_repair_metrics(self):
        nodes = make_nodes(2)
        backend = ReplicatedMemory(nodes)
        clock = Clock()
        manager = RepairManager(backend, clock,
                                policy="resilver_period=100,resilver_batch=2")
        for page in range(8):
            backend.write_bytes(page * PAGE_SIZE, b"A" * PAGE_SIZE)
        nodes[1].fail()
        for page in range(8):
            backend.write_bytes(page * PAGE_SIZE, bytes([page]) * PAGE_SIZE)
        assert backend.rejoin(nodes[1]) is False
        clock.advance(100)  # mid-resilver: 6 of 8 pages still stale
        assert backend.stale_slots == 6
        started = dict(manager._sync_started)
        # The impatient re-entry: still syncing, answer is still False,
        # and nothing is re-counted or re-armed.
        assert backend.rejoin(nodes[1]) is False
        assert backend.rejoin(1) is False
        assert backend.syncing_members() == [1]
        assert backend.counters.get("rejoins") == 1
        assert manager._sync_started == started  # sync clock not reset
        clock.advance(400)
        assert backend.stale_slots == 0
        # Pinned: exactly one replay of the 8-page journal, one promote.
        assert backend.registry.value("repair.pages_resilvered") == 8
        assert backend.registry.value("repair.bytes_resilvered") == \
            8 * PAGE_SIZE
        assert backend.registry.value("repair.nodes_promoted") == 1
        assert backend.counters.get("rejoins") == 1
        assert manager._sync_started == {}

    def test_rejoin_on_healthy_clean_member_is_a_noop(self):
        nodes = make_nodes(2)
        backend = ReplicatedMemory(nodes)
        backend.write_bytes(0, b"A" * PAGE_SIZE)
        assert backend.rejoin(nodes[1]) is True
        assert backend.counters.get("rejoins") == 0

    def test_double_rejoin_without_manager_retries_fallback_only(self):
        """No manager: the sync fallback can stall (no clean source);
        re-invoking rejoin retries it without re-counting."""
        nodes = make_nodes(2)
        backend = ReplicatedMemory(nodes)
        backend.write_bytes(0, b"A" * PAGE_SIZE)
        nodes[1].fail()
        backend.write_bytes(0, b"B" * PAGE_SIZE)
        nodes[0].fail()  # the only clean source is down
        nodes[1].recover()
        assert backend.rejoin(nodes[1]) is False  # stalled, still syncing
        assert backend.syncing_members() == [1]
        assert backend.rejoin(nodes[1]) is False  # idempotent retry
        assert backend.counters.get("rejoins") == 1
        nodes[0].recover()
        assert backend.rejoin(nodes[1]) is True  # retry now succeeds
        assert backend.counters.get("rejoins") == 1
        assert backend.stale_slots == 0
        nodes[0].fail()
        assert backend.read_bytes(0, 64) == b"B" * 64


class TestPrematurePromote:
    """Regression: ``promote()`` while the member's journal is still
    dirty must be refused.

    Before the fix an early promote dropped the member from the syncing
    set while it still held stale pages. The background resilver
    iterates ``syncing_members()``, so the member's journal was orphaned:
    ``stale_slots`` stuck forever, the backend stayed degraded, and the
    manager's ``_sync_started`` entry (its per-member resilver QP
    bookkeeping) leaked. Reads were always journal-protected — asserted
    here too — the lost invariant was repair-progress, not safety.
    """

    def test_promote_refused_while_dirty_then_resilver_completes(self):
        nodes = make_nodes(2)
        backend = ReplicatedMemory(nodes)
        clock = Clock()
        manager = RepairManager(backend, clock,
                                policy="resilver_period=100,resilver_batch=2")
        for page in range(8):
            backend.write_bytes(page * PAGE_SIZE, b"A" * PAGE_SIZE)
        nodes[1].fail()
        for page in range(8):
            backend.write_bytes(page * PAGE_SIZE, bytes([page]) * PAGE_SIZE)
        backend.rejoin(nodes[1])
        clock.advance(100)
        assert backend.stale_slots == 6
        backend.promote(1)  # chaos: promoted mid-resilver
        # Refused: still syncing, counted as a premature promote.
        assert backend.syncing_members() == [1]
        assert backend.registry.value("repair.premature_promotes") == 1
        assert backend.registry.value("repair.nodes_promoted") == 0
        # Reads still avoid the syncing member's stale ranges.
        assert backend.read_bytes(0, 32) == bytes([0]) * 32
        # The resilver was NOT orphaned: the journal drains and the
        # member is promoted exactly once, with no leaked bookkeeping.
        clock.advance(400)
        assert backend.stale_slots == 0
        assert backend.syncing_members() == []
        assert backend.registry.value("repair.nodes_promoted") == 1
        assert backend.registry.value("repair.pages_resilvered") == 8
        assert manager._sync_started == {}
        nodes[0].fail()
        for page in range(8):
            assert backend.read_bytes(page * PAGE_SIZE, 32) == \
                bytes([page]) * 32

    def test_promote_counter_not_preregistered(self):
        """Digest safety: the premature-promote counter is lazy, so
        healthy runs keep their historical metric key set."""
        backend = ReplicatedMemory(make_nodes(2))
        assert "repair.premature_promotes" not in \
            backend.metrics().counters

    def test_promote_of_non_syncing_member_still_a_noop(self):
        backend = ReplicatedMemory(make_nodes(2))
        backend.promote(0)
        assert backend.registry.value("repair.nodes_promoted") == 0
        assert "repair.premature_promotes" not in \
            backend.metrics().counters


class TestMetricsAndWiring:
    def test_counters_are_canonical_with_legacy_aliases(self):
        nodes = make_nodes(2)
        backend = ReplicatedMemory(nodes)
        backend.write_bytes(0, b"A" * 64)
        nodes[1].fail()
        backend.write_bytes(0, b"B" * 64)
        # The legacy surface and the canonical registry are one store.
        assert backend.counters.get("writes_skipped_dead_replica") == 1
        assert backend.registry.value(
            "cluster.writes_skipped_dead_replica") == 1
        snap = backend.metrics()
        # Per-replica write-throughs: 2 while healthy + 1 degraded.
        assert snap.counters["cluster.replicated_writes"] == 3
        flat = snap.as_flat_dict()
        assert flat["writes_skipped_dead_replica"] == 1  # legacy spelling
        assert snap.counters["cluster.stale_slots"] == 1.0
        assert snap.counters["cluster.degraded"] == 1.0

    def test_gauges_track_live_state(self):
        nodes = make_nodes(3)
        backend = ParityStripedMemory(nodes)
        registry = backend.registry
        assert registry.value("cluster.nodes_down") == 0
        nodes[0].fail()
        assert registry.value("cluster.nodes_down") == 1
        backend.write_bytes(0, b"B" * 64)
        assert registry.value("cluster.stale_slots") == 1
        clock = Clock()
        RepairManager(backend, clock, policy="resilver_period=100")
        backend.rejoin(nodes[0])
        assert registry.value("repair.nodes_syncing") == 1
        clock.advance(200)
        assert registry.value("repair.nodes_syncing") == 0

    def test_make_system_repair_knob(self):
        from repro.harness import make_system
        system = make_system("dilos-readahead", local_bytes=1 * MIB,
                             remote_bytes=8 * MIB, backend="replicated:2",
                             repair="resilver_period=50,scrub_period=500")
        backend = system.node
        manager = backend.repair
        assert isinstance(manager, RepairManager)
        assert manager.policy.resilver_period_us == 50.0
        assert manager.clock is system.clock

    def test_repair_knob_requires_a_cluster_backend(self):
        from repro.harness import make_system
        with pytest.raises(ValueError):
            make_system("dilos-readahead", local_bytes=1 * MIB,
                        backend="node", repair="resilver_period=50")

    def test_spec_coerces_repair_policy(self):
        from repro.core.spec import SystemSpec
        spec = SystemSpec(repair={"resilver_batch_pages": 3})
        assert isinstance(spec.repair, RepairPolicy)
        assert spec.repair.resilver_batch_pages == 3

    def test_shared_backend_keeps_the_first_manager(self):
        from repro.core.spec import SystemSpec
        backend = ReplicatedMemory(make_nodes(2, capacity=16 * MIB))
        clock = Clock()
        first = SystemSpec(kind="dilos-readahead", local_mem_bytes=1 * MIB,
                           backend=backend, clock=clock,
                           repair="resilver_period=50").boot()
        manager = backend.repair
        SystemSpec(kind="dilos-readahead", local_mem_bytes=1 * MIB,
                   backend=backend, clock=clock,
                   repair="resilver_period=999").boot()
        assert backend.repair is manager
        assert first.node is backend

    def test_compute_cluster_repair_and_merged_metrics(self):
        from repro.sim.tenancy import ComputeCluster
        from repro.harness.scenarios import seqread_tenant
        cluster = ComputeCluster(backend="replicated:2",
                                 remote_mem_bytes=32 * MIB,
                                 quantum_us=250.0,
                                 repair="resilver_period=100")
        assert isinstance(cluster.repair, RepairManager)
        cluster.add_tenant(
            "stream",
            __import__("repro.core.spec",
                       fromlist=["SystemSpec"]).SystemSpec(
                kind="dilos-readahead", local_mem_bytes=256 * 1024),
            seqread_tenant(nbytes=1 * MIB, passes=1))
        snap = cluster.run()
        # Backend redundancy state surfaces in the merged snapshot.
        assert "cluster.stale_slots" in snap.counters
        assert "repair.pages_resilvered" in snap.counters
        assert snap.counters["cluster.degraded"] == 0.0

    def test_compute_cluster_repair_needs_cluster_backend(self):
        from repro.sim.tenancy import ComputeCluster
        with pytest.raises(ValueError):
            ComputeCluster(backend="node", repair="resilver_period=100")


class TestEndToEndAcceptance:
    """The issue's acceptance chaos sequence, deterministic fast version:
    kill a member -> degraded writes -> rejoin -> resilver -> kill a
    *different* member -> every byte reads back correctly, for both
    redundant backends under a full DiLOS kernel."""

    def _run(self, backend, nodes, victim, second):
        system = DilosSystem(DilosConfig(local_mem_bytes=512 * 1024,
                                         remote_mem_bytes=2 * MIB),
                             memory_backend=backend)
        RepairManager(backend, system.clock,
                      policy="resilver_period=100,resilver_batch=16")
        region = system.mmap(2 * MIB, name="accept")
        pages = region.size // PAGE_SIZE
        for i in range(pages):
            system.memory.write(region.base + i * PAGE_SIZE,
                                bytes([(i * 7) % 251]) * 48)
        system.clock.advance(5000)
        victim.fail()
        for i in range(pages):
            system.memory.write(region.base + i * PAGE_SIZE,
                                bytes([(i * 11 + 3) % 251]) * 48)
        system.clock.advance(5000)  # cleaner drains; journal fills
        assert backend.stale_slots > 0
        backend.rejoin(victim)
        guard = 0
        while backend.degraded:
            system.clock.advance(500)
            guard += 1
            assert guard < 1000, "resilver never converged"
        second.fail()
        for i in range(pages):
            got = system.memory.read(region.base + i * PAGE_SIZE, 48)
            assert got == bytes([(i * 11 + 3) % 251]) * 48, f"page {i}"

    def test_replicated_full_lifecycle(self):
        nodes = make_nodes(2, capacity=4 * MIB)
        backend = ReplicatedMemory(nodes)
        self._run(backend, nodes, victim=nodes[1], second=nodes[0])
        assert backend.counters.get("rejoins") == 1
        assert backend.registry.value("repair.pages_resilvered") > 0

    def test_parity_full_lifecycle(self):
        nodes = make_nodes(4, capacity=2 * MIB)
        backend = ParityStripedMemory(nodes)
        self._run(backend, nodes, victim=nodes[0], second=nodes[1])
        assert backend.counters.get("degraded_writes") > 0
        assert backend.registry.value("repair.pages_resilvered") > 0
