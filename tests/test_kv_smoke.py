"""Wire ``scripts/kv_chaos_smoke.py`` into the suite: the documented KV
failover reproduction (lease-holder kill under open-loop load, blackout
rejects, bounded failover latency, rejoin + resilver to promotion, zero
lost updates, same-config determinism on both redundant backends) must
pass end to end, exactly as a user would run it."""

import sys
from pathlib import Path

import pytest

SCRIPTS = Path(__file__).resolve().parent.parent / "scripts"

pytestmark = pytest.mark.slow


def test_kv_chaos_smoke():
    sys.path.insert(0, str(SCRIPTS))
    try:
        import kv_chaos_smoke
    finally:
        sys.path.remove(str(SCRIPTS))
    assert kv_chaos_smoke.main() == 0
