"""Wire ``scripts/rack_smoke.py`` into the suite: the documented rack
reproduction (placement-policy tradeoff under ToR oversubscription,
stranding under uneven striping, byte-identical parallel sweep) must
pass end to end, exactly as CI runs it."""

import sys
from pathlib import Path

import pytest

SCRIPTS = Path(__file__).resolve().parent.parent / "scripts"


@pytest.mark.slow
def test_rack_smoke():
    sys.path.insert(0, str(SCRIPTS))
    try:
        import rack_smoke
    finally:
        sys.path.remove(str(SCRIPTS))
    assert rack_smoke.main() == 0
