"""Wire ``scripts/trace_smoke.py`` into the suite: the user-facing
trace-and-export path must work end to end, exactly as documented."""

import sys
from pathlib import Path

SCRIPTS = Path(__file__).resolve().parent.parent / "scripts"


def test_trace_smoke(tmp_path):
    sys.path.insert(0, str(SCRIPTS))
    try:
        import trace_smoke
    finally:
        sys.path.remove(str(SCRIPTS))
    assert trace_smoke.main(tmp_path) == 0
    assert (tmp_path / "trace.json").exists()
    assert (tmp_path / "trace.jsonl").exists()
