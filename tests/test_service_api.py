"""The unified Workload/Service API: protocol conformance, the service
registry, and the deprecated closed-loop aliases."""

from __future__ import annotations

import random

import pytest

from repro.alloc import Mimalloc
from repro.apps.api import (
    Request,
    Response,
    SERVICES,
    Service,
    ServiceRegistry,
    run_closed_loop,
)
from repro.apps.redis import GetWorkload, LRangeWorkload, RedisServer
from repro.apps.redis.service import RedisService
from repro.common.units import MIB
from repro.harness import local_bytes_for, make_system


def _redis_system(footprint: int = 2 * MIB):
    return make_system("dilos-readahead", local_bytes_for(footprint, 0.5))


# -- envelopes ---------------------------------------------------------------

class TestEnvelopes:
    def test_request_is_frozen_and_routes_by_key(self):
        request = Request("get", key=b"k:1", client_id=7)
        assert request.routing_key() == b"k:1"
        with pytest.raises(AttributeError):
            request.op = "set"

    def test_keyless_request_routes_by_op(self):
        assert Request("mean", args=(0, 10)).routing_key() == b"mean"

    def test_response_fail(self):
        response = Response.fail("no such key")
        assert not response.ok
        assert response.value is None
        assert response.error == "no such key"


# -- protocol conformance ----------------------------------------------------

class TestConformance:
    def test_redis_service_conforms(self):
        service = SERVICES.build("redis", _redis_system(), n_keys=40,
                                 value_bytes=256)
        assert isinstance(service, Service)
        assert service.name == "redis"
        rng = random.Random(3)
        request = service.sample_request(rng)
        response = service.handle(request)
        assert response.ok

    def test_taxi_service_conforms(self):
        service = SERVICES.build("taxi", _redis_system(4 * MIB),
                                 rows=1 << 12)
        assert isinstance(service, Service)
        assert service.name == "taxi"
        response = service.handle(Request("mean", key=b"fare",
                                          args=(0, 1024)))
        assert response.ok
        assert response.value > 0

    def test_taxi_rejects_unknown_op_and_column(self):
        service = SERVICES.build("taxi", _redis_system(4 * MIB),
                                 rows=1 << 12)
        assert not service.handle(Request("median", key=b"fare")).ok
        assert not service.handle(Request("mean", key=b"tips")).ok

    def test_redis_get_set_round_trip(self):
        service = SERVICES.build("redis", _redis_system(), n_keys=40,
                                 value_bytes=256)
        assert service.handle(
            Request("set", key=b"fresh", value=b"payload")).ok
        got = service.handle(Request("get", key=b"fresh"))
        assert got.ok and got.value == b"payload"
        missing = service.handle(Request("get", key=b"nope"))
        assert not missing.ok

    def test_redis_rejects_unknown_op(self):
        service = SERVICES.build("redis", _redis_system(), n_keys=10,
                                 value_bytes=64)
        response = service.handle(Request("flushall"))
        assert not response.ok
        assert "flushall" in response.error

    def test_run_closed_loop_bridge(self):
        system = _redis_system()
        service = SERVICES.build("redis", system, n_keys=40,
                                 value_bytes=256)
        stats = run_closed_loop(service, system, requests=60)
        assert stats.requests == 60
        assert stats.errors == 0
        assert stats.elapsed_us > 0
        assert stats.metrics["fault.major"] >= 0


# -- the registry ------------------------------------------------------------

class TestRegistry:
    def test_builtins_resolve_lazily(self):
        registry = SERVICES
        assert {"redis", "taxi"} <= set(registry.kinds())
        assert callable(registry.factory("redis"))

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown service kind"):
            SERVICES.factory("memcached")

    def test_register_decorator_and_duplicates(self):
        registry = ServiceRegistry()

        @registry.register("echo")
        def build_echo(system):
            class Echo:
                name = "echo"

                def handle(self, request):
                    return Response(value=request.key)
            return Echo()

        service = registry.build("echo", None)
        assert isinstance(service, Service)
        assert service.handle(Request("x", key=b"hi")).value == b"hi"
        with pytest.raises(ValueError, match="already registered"):
            registry.register("echo", build_echo)
        registry.unregister("echo")
        with pytest.raises(ValueError, match="unknown service kind"):
            registry.factory("echo")


# -- deprecated closed-loop aliases -----------------------------------------

class TestDeprecatedAliases:
    def test_get_workload_warns_and_still_verifies(self):
        workload = GetWorkload(value_size=1024, n_keys=60, n_queries=120)
        system = _redis_system(workload.footprint_bytes)
        server = RedisServer(system, Mimalloc(system, 8 * MIB))
        workload.populate(server)
        with pytest.warns(DeprecationWarning, match="repro.serve"):
            stats = workload.run(server, verify=True)
        assert stats.queries == 120
        assert stats.latencies.count == 120
        assert stats.requests_per_second > 0

    def test_lrange_workload_warns_and_still_verifies(self):
        workload = LRangeWorkload(n_lists=30, elems_per_list=16,
                                  lrange_count=8, n_queries=60)
        system = _redis_system(workload.footprint_bytes)
        server = RedisServer(system, Mimalloc(system, 8 * MIB))
        workload.populate(server)
        with pytest.warns(DeprecationWarning, match="repro.serve"):
            stats = workload.run(server, verify=True)
        assert stats.queries == 60

    def test_alias_equals_direct_service_path(self):
        # The deprecated driver must stay byte-identical to driving the
        # Service protocol by hand: same seeds, same request sequence,
        # same final metrics digest.
        def run_alias():
            workload = GetWorkload(value_size=1024, n_keys=60,
                                   n_queries=120)
            system = _redis_system(workload.footprint_bytes)
            server = RedisServer(system, Mimalloc(system, 8 * MIB))
            workload.populate(server)
            with pytest.warns(DeprecationWarning):
                workload.run(server, verify=True)
            return system.metrics().digest()

        def run_direct():
            workload = GetWorkload(value_size=1024, n_keys=60,
                                   n_queries=120)
            system = _redis_system(workload.footprint_bytes)
            server = RedisServer(system, Mimalloc(system, 8 * MIB))
            workload.populate(server)
            service = RedisService(server)
            rng = random.Random(workload.seed + 1)
            for _ in range(workload.n_queries):
                key = b"key:%d" % rng.randrange(workload.n_keys)
                assert service.handle(Request("get", key=key)).ok
            return system.metrics().digest()

        assert run_alias() == run_direct()
