"""Tests for the deterministic multi-tenant scheduler (repro.sim.tenancy)."""

import pytest

from repro.common.units import KIB, MIB, PAGE_SIZE
from repro.core.spec import SystemSpec
from repro.harness.scenarios import (
    SCENARIOS,
    build_scenario,
    kmeans_tenant,
    redis_get_tenant,
    seqread_tenant,
)
from repro.sim.tenancy import ComputeCluster


def touch_tenant(pages=64, passes=2):
    """A minimal workload: touch ``pages`` pages, ``passes`` times."""
    def factory(system):
        def gen():
            region = system.mmap(pages * PAGE_SIZE, name="touch")
            for _ in range(passes):
                for i in range(pages):
                    system.memory.write(region.base + i * PAGE_SIZE, b"t")
                    yield "touch"
        return gen()
    return factory


def spec(kind="dilos-readahead", local=256 * KIB):
    return SystemSpec(kind=kind, local_mem_bytes=local)


class TestScheduling:
    def test_round_robin_interleaves_on_one_clock(self):
        cluster = ComputeCluster(backend="sharded:2",
                                 remote_mem_bytes=16 * MIB, quantum_us=20.0)
        a = cluster.add_tenant("alpha", spec(), touch_tenant())
        b = cluster.add_tenant("beta", spec(), touch_tenant())
        cluster.run()
        assert a.done and b.done
        assert a.system.clock is b.system.clock is cluster.clock
        # Both made progress in multiple slices — real interleaving, not
        # run-to-completion.
        assert a.quanta > 1 and b.quanta > 1
        assert a.finish_us is not None and b.finish_us is not None

    def test_tenants_share_one_backend(self):
        cluster = ComputeCluster(backend="sharded:2",
                                 remote_mem_bytes=16 * MIB, quantum_us=20.0)
        a = cluster.add_tenant("alpha", spec(local=192 * KIB),
                               touch_tenant(pages=128))
        b = cluster.add_tenant("beta", spec(local=192 * KIB),
                               touch_tenant(pages=128))
        cluster.run()
        assert a.system.node is cluster.backend
        assert b.system.node is cluster.backend
        used = cluster.backend.total_slots - cluster.backend.free_slots
        assert used > 0  # evictions from both tenants landed in the pool

    def test_max_quanta_bounds_run(self):
        cluster = ComputeCluster(backend="node", remote_mem_bytes=16 * MIB,
                                 quantum_us=5.0)
        cluster.add_tenant("alpha", spec(), touch_tenant(passes=50))
        snap = cluster.run(max_quanta=3)
        assert snap.value("cluster.quanta") == 3
        assert not cluster.tenants[0].done

    def test_run_without_tenants_raises(self):
        with pytest.raises(RuntimeError, match="no tenants"):
            ComputeCluster(remote_mem_bytes=16 * MIB).run()

    def test_zero_cost_workload_trips_safety_valve(self):
        def spin(system):
            def gen():
                while True:
                    yield "noop"  # never advances the clock
            return gen()

        cluster = ComputeCluster(backend="node", remote_mem_bytes=16 * MIB,
                                 quantum_us=10.0, max_slice_ops=100)
        cluster.add_tenant("spinner", spec(), spin)
        with pytest.raises(RuntimeError, match="not advancing the clock"):
            cluster.run()


class TestTenantValidation:
    def test_bad_names_rejected(self):
        cluster = ComputeCluster(remote_mem_bytes=16 * MIB)
        for bad in ("Alpha", "a-b", "9lives", "a.b", ""):
            with pytest.raises(ValueError, match="tenant name"):
                cluster.add_tenant(bad, spec(), touch_tenant())

    def test_duplicate_name_rejected(self):
        cluster = ComputeCluster(remote_mem_bytes=16 * MIB)
        cluster.add_tenant("alpha", spec(), touch_tenant())
        with pytest.raises(ValueError, match="duplicate"):
            cluster.add_tenant("alpha", spec(), touch_tenant())

    def test_aifm_cannot_share_slot_backend(self):
        cluster = ComputeCluster(remote_mem_bytes=16 * MIB)
        with pytest.raises(ValueError, match="share_backend=False"):
            cluster.add_tenant("aifm", spec(kind="aifm"), touch_tenant())

    def test_aifm_private_backend_co_schedules(self):
        def aifm_workload(runtime):
            def gen():
                ptrs = [runtime.allocate(4096, data=b"a" * 4096)
                        for _ in range(8)]
                for ptr in ptrs:
                    assert ptr.read(0, 4) == b"aaaa"
                    yield "read"
            return gen()

        cluster = ComputeCluster(backend="sharded:2",
                                 remote_mem_bytes=16 * MIB, quantum_us=10.0)
        paging = cluster.add_tenant("paging", spec(), touch_tenant())
        aifm = cluster.add_tenant("objects", spec(kind="aifm", local=1 * MIB),
                                  aifm_workload, share_backend=False)
        cluster.run()
        assert paging.done and aifm.done
        assert aifm.system.node is not cluster.backend
        assert aifm.system.clock is cluster.clock

    def test_tenant_lookup(self):
        cluster = ComputeCluster(remote_mem_bytes=16 * MIB)
        t = cluster.add_tenant("alpha", spec(), touch_tenant())
        assert cluster.tenant("alpha") is t
        with pytest.raises(KeyError, match="alpha"):
            cluster.tenant("missing")


class TestMergedMetrics:
    def test_per_tenant_namespacing(self):
        cluster = ComputeCluster(backend="sharded:2",
                                 remote_mem_bytes=16 * MIB, quantum_us=20.0)
        cluster.add_tenant("alpha", spec(local=192 * KIB),
                           touch_tenant(pages=128))
        cluster.add_tenant("beta", spec(local=192 * KIB), touch_tenant())
        snap = cluster.run()
        assert snap.value("tenant.alpha.fault.major") > 0
        assert snap.value("tenant.alpha.net.bytes_written") > 0
        assert snap.value("tenant.alpha.ops") == 256
        assert snap.value("tenant.beta.ops") == 128
        assert snap.value("tenant.alpha.run_us") > \
            snap.value("tenant.beta.run_us")

    def test_aggregate_counters(self):
        cluster = ComputeCluster(backend="sharded:2",
                                 remote_mem_bytes=16 * MIB, quantum_us=20.0)
        cluster.add_tenant("alpha", spec(), touch_tenant())
        cluster.add_tenant("beta", spec(), touch_tenant())
        snap = cluster.run()
        assert snap.value("cluster.ops") == 256
        assert snap.value("cluster.tenants_finished") == 2
        assert snap.value("backend.total_slots") > 0
        assert 0.5 <= snap.value("cluster.fairness_jain") <= 1.0
        assert snap.extra["tenants"] == ["alpha", "beta"]

    def test_symmetric_tenants_are_fair(self):
        cluster = ComputeCluster(backend="sharded:2",
                                 remote_mem_bytes=16 * MIB, quantum_us=10.0)
        cluster.add_tenant("alpha", spec(), touch_tenant(passes=4))
        cluster.add_tenant("beta", spec(), touch_tenant(passes=4))
        snap = cluster.run()
        assert snap.value("cluster.fairness_jain") == pytest.approx(1.0,
                                                                    abs=0.05)


class TestScenarioPresets:
    def test_presets_listed(self):
        assert "kmeans+redis" in SCENARIOS
        for name, (desc, builder) in SCENARIOS.items():
            assert desc and callable(builder)

    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            build_scenario("nope")

    def test_kmeans_redis_two_tenant_determinism(self):
        """The acceptance scenario: kmeans + redis on shared sharded:2 is
        deterministic (same seed => same merged digest) and reports
        per-tenant fault/prefetch/net metrics plus aggregate counters."""
        first = build_scenario("kmeans+redis")
        snap = first.run()
        for tenant in ("kmeans", "redis"):
            assert snap.value(f"tenant.{tenant}.fault.major") > 0
            assert snap.value(f"tenant.{tenant}.prefetch.issued") > 0
            assert snap.value(f"tenant.{tenant}.net.bytes_read") > 0
        assert snap.value("cluster.quanta") > 2  # genuinely interleaved
        assert snap.value("backend.free_slots") < \
            snap.value("backend.total_slots")
        second = build_scenario("kmeans+redis")
        assert second.run().digest() == snap.digest()

    def test_scenario_overrides(self):
        cluster = build_scenario("stream-duo", backend="sharded:2",
                                 quantum_us=50.0, kind="fastswap")
        assert cluster.backend_label == "sharded:2"
        assert cluster.quantum_us == 50.0
        assert cluster.tenants[0].spec.kind == "fastswap"

    @pytest.mark.parametrize("workload_factory", [
        kmeans_tenant(n_points=2048), redis_get_tenant(n_keys=50,
                                                       n_queries=100),
        seqread_tenant(nbytes=256 * KIB, passes=1)],
        ids=["kmeans", "redis", "seqread"])
    def test_each_workload_runs_solo(self, workload_factory):
        cluster = ComputeCluster(backend="node", remote_mem_bytes=32 * MIB,
                                 quantum_us=100.0)
        tenant = cluster.add_tenant("solo", spec(local=1 * MIB),
                                    workload_factory)
        cluster.run()
        assert tenant.done and tenant.ops > 0
