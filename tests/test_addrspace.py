"""Unit tests for the address space and remote backing."""

import pytest

from repro.common.errors import InvalidAddressError
from repro.common.units import MIB, PAGE_SIZE
from repro.mem.addrspace import AddressSpace
from repro.mem.remote import MemoryNode


@pytest.fixture()
def space():
    return AddressSpace(MemoryNode(16 * MIB))


class TestRegions:
    def test_mmap_page_aligned(self, space):
        region = space.mmap(100)
        assert region.base % PAGE_SIZE == 0
        assert region.size == PAGE_SIZE

    def test_regions_disjoint_with_guard(self, space):
        a = space.mmap(PAGE_SIZE)
        b = space.mmap(PAGE_SIZE)
        assert b.base >= a.end + PAGE_SIZE

    def test_region_lookup(self, space):
        region = space.mmap(2 * PAGE_SIZE, name="heap")
        assert space.region_for(region.base) is region
        assert space.region_for(region.end - 1) is region
        with pytest.raises(InvalidAddressError):
            space.region_for(region.end)  # guard page

    def test_unmapped_address_rejected(self, space):
        with pytest.raises(InvalidAddressError):
            space.region_for(0x10)

    def test_zero_size_rejected(self, space):
        with pytest.raises(ValueError):
            space.mmap(0)

    def test_munmap(self, space):
        region = space.mmap(PAGE_SIZE)
        space.munmap(region)
        with pytest.raises(InvalidAddressError):
            space.region_for(region.base)

    def test_ddc_requires_node(self):
        space = AddressSpace(None)
        with pytest.raises(ValueError):
            space.mmap(PAGE_SIZE, ddc=True)
        region = space.mmap(PAGE_SIZE, ddc=False)
        assert not region.ddc


class TestRemoteBacking:
    def test_lazy_slot_allocation(self, space):
        region = space.mmap(PAGE_SIZE)
        vpn = region.base >> 12
        assert not space.has_remote_backing(vpn)
        pfn = space.remote_pfn_for(vpn)
        assert space.has_remote_backing(vpn)
        assert space.remote_pfn_for(vpn) == pfn  # stable

    def test_distinct_pages_distinct_slots(self, space):
        region = space.mmap(2 * PAGE_SIZE)
        vpn = region.base >> 12
        assert space.remote_offset_for(vpn) != space.remote_offset_for(vpn + 1)

    def test_release_remote(self, space):
        region = space.mmap(PAGE_SIZE)
        vpn = region.base >> 12
        space.remote_pfn_for(vpn)
        space.release_remote(vpn)
        assert not space.has_remote_backing(vpn)

    def test_release_unbacked_is_noop(self, space):
        space.release_remote(12345)
