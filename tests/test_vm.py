"""Unit tests for the MMU/access engine against a toy demand-zero kernel."""

import pytest

from repro.common.clock import Clock
from repro.common.errors import FaultError
from repro.common.units import PAGE_SHIFT, PAGE_SIZE
from repro.mem import pte as pte_mod
from repro.mem.frames import FramePool
from repro.mem.page_table import PageTable
from repro.mem.vm import VirtualMemory


class DemandZeroKernel:
    """Maps a fresh zero frame on every fault — the minimal kernel."""

    def __init__(self, pt, frames):
        self.pt = pt
        self.frames = frames
        self.faults = 0

    def handle_fault(self, va, is_write):
        self.faults += 1
        vpn = va >> PAGE_SHIFT
        self.pt.set(vpn, pte_mod.make_local(self.frames.alloc()))


@pytest.fixture()
def vm_setup():
    clock = Clock()
    pt = PageTable()
    frames = FramePool(64)
    vm = VirtualMemory(clock, pt, frames, copy_cost_per_byte=1e-4)
    kernel = DemandZeroKernel(pt, frames)
    vm.attach_kernel(kernel.handle_fault)
    return clock, pt, frames, vm, kernel


class TestAccess:
    def test_write_read_roundtrip(self, vm_setup):
        _, _, _, vm, _ = vm_setup
        vm.write(0x5000, b"hello world")
        assert vm.read(0x5000, 11) == b"hello world"

    def test_cross_page_access(self, vm_setup):
        _, _, _, vm, kernel = vm_setup
        va = 2 * PAGE_SIZE - 3
        vm.write(va, b"abcdef")  # spans two pages
        assert vm.read(va, 6) == b"abcdef"
        assert kernel.faults == 2

    def test_zero_length(self, vm_setup):
        _, _, _, vm, kernel = vm_setup
        assert vm.read(0x5000, 0) == b""
        vm.write(0x5000, b"")
        assert kernel.faults == 0

    def test_negative_size_rejected(self, vm_setup):
        _, _, _, vm, _ = vm_setup
        with pytest.raises(ValueError):
            vm.read(0, -1)

    def test_no_kernel_raises(self):
        vm = VirtualMemory(Clock(), PageTable(), FramePool(4), 1e-4)
        with pytest.raises(FaultError):
            vm.read(0x1000, 1)

    def test_faults_once_per_page(self, vm_setup):
        _, _, _, vm, kernel = vm_setup
        vm.read(0x3000, 8)
        vm.read(0x3000, 8)
        vm.read(0x3008, 8)
        assert kernel.faults == 1

    def test_copy_time_charged(self, vm_setup):
        clock, _, _, vm, _ = vm_setup
        vm.write(0x1000, b"x" * PAGE_SIZE)
        t = clock.now
        vm.read(0x1000, PAGE_SIZE)
        assert clock.now - t == pytest.approx(PAGE_SIZE * 1e-4)

    def test_u64_helpers(self, vm_setup):
        _, _, _, vm, _ = vm_setup
        vm.write_u64(0x7000, 0xDEADBEEF12345678)
        assert vm.read_u64(0x7000) == 0xDEADBEEF12345678
        vm.write_u32(0x7010, 0xCAFEBABE)
        assert vm.read_u32(0x7010) == 0xCAFEBABE

    def test_unserviceable_fault_bounded(self, vm_setup):
        _, _, _, vm, kernel = vm_setup
        kernel.handle_fault = lambda va, w: None
        vm.attach_kernel(kernel.handle_fault)
        with pytest.raises(FaultError):
            vm.read(0x9000, 1)


class TestAccessedDirtyBits:
    def test_read_sets_accessed_only(self, vm_setup):
        _, pt, _, vm, _ = vm_setup
        vm.read(0x1000, 1)
        entry = pt.get(1)
        assert pte_mod.is_accessed(entry)
        assert not pte_mod.is_dirty(entry)

    def test_write_sets_dirty(self, vm_setup):
        _, pt, _, vm, _ = vm_setup
        vm.write(0x1000, b"x")
        assert pte_mod.is_dirty(pt.get(1))

    def test_dirty_set_through_warm_tlb(self, vm_setup):
        """A read warms the TLB clean; a later write must still reach the
        PTE to set the dirty bit (the x86 assist)."""
        _, pt, _, vm, _ = vm_setup
        vm.read(0x1000, 1)
        assert not pte_mod.is_dirty(pt.get(1))
        vm.write(0x1000, b"x")
        assert pte_mod.is_dirty(pt.get(1))

    def test_accessed_reset_after_clear_and_shootdown(self, vm_setup):
        """After the reclaimer clears the accessed bit and shoots down the
        TLB, the next access must set it again."""
        _, pt, _, vm, _ = vm_setup
        vm.read(0x1000, 1)
        pt.set(1, pte_mod.clear_accessed(pt.get(1)))
        vm.tlb.invalidate(1)
        vm.read(0x1000, 1)
        assert pte_mod.is_accessed(pt.get(1))

    def test_touch_faults_without_copy_charge(self, vm_setup):
        clock, pt, _, vm, kernel = vm_setup
        t = clock.now
        vm.touch(0x4000, 3 * PAGE_SIZE)
        assert kernel.faults == 3
        assert clock.now == t  # no copy time for touch
