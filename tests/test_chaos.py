"""Failure-injection ("chaos") property tests.

Hypothesis drives random workloads with a memory-node crash injected at a
random point; redundant backends must preserve every byte, keep serving
reads and writes, and the paging invariants (no dirty eviction, no frame
leaks) must hold throughout.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.common.units import MIB, PAGE_SIZE
from repro.core import DilosConfig, DilosSystem
from repro.mem.cluster import ParityStripedMemory, ReplicatedMemory
from repro.mem.remote import MemoryNode


def build(backend_kind, n_nodes):
    nodes = [MemoryNode(16 * MIB, name=f"m{i}") for i in range(n_nodes)]
    if backend_kind == "replicated":
        backend = ReplicatedMemory(nodes)
        # Any replica may die.
        killable = list(range(n_nodes))
    else:
        backend = ParityStripedMemory(nodes)
        # Any single node (data or parity) may die.
        killable = list(range(n_nodes))
    system = DilosSystem(DilosConfig(local_mem_bytes=1 * MIB,
                                     remote_mem_bytes=16 * MIB),
                         memory_backend=backend)
    return system, nodes, killable


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       backend_kind=st.sampled_from(["replicated", "parity"]),
       n_nodes=st.integers(min_value=3, max_value=4),
       fail_point=st.floats(min_value=0.2, max_value=0.8))
def test_random_workload_survives_single_node_crash(
        seed, backend_kind, n_nodes, fail_point):
    system, nodes, killable = build(backend_kind, n_nodes)
    region = system.mmap(4 * MIB, name="chaos")
    pages = region.size // PAGE_SIZE
    rng = random.Random(seed)
    shadow = {}
    steps = 600
    crash_step = int(steps * fail_point)
    for step in range(steps):
        if step == crash_step:
            system.clock.advance(3000)  # let the cleaner drain first
            nodes[rng.choice(killable)].fail()
        page = rng.randrange(pages)
        va = region.base + page * PAGE_SIZE + rng.randrange(0, 64) * 8
        if page in shadow and rng.random() < 0.45:
            got = system.memory.read(region.base + page * PAGE_SIZE, 16)
            assert got == shadow[page], (
                f"{backend_kind}: page {page} corrupted after crash")
        else:
            payload = bytes([step % 251] * 16)
            system.memory.write(region.base + page * PAGE_SIZE, payload)
            shadow[page] = payload
    # Full verification sweep at the end.
    for page, payload in shadow.items():
        assert system.memory.read(region.base + page * PAGE_SIZE, 16) == \
            payload
    # Paging invariants survived the chaos too.
    assert system.kernel.counters.get("direct_reclaims") == 0
    used = system.frames.used_frames
    resident = system.kernel.page_manager.resident_pages
    assert used >= resident  # frames backing the LRU all accounted for


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_replicated_double_fault_keeps_last_replica_serving(seed):
    """With three replicas, two crashes still leave a serving copy."""
    nodes = [MemoryNode(16 * MIB, name=f"m{i}") for i in range(3)]
    backend = ReplicatedMemory(nodes)
    system = DilosSystem(DilosConfig(local_mem_bytes=1 * MIB,
                                     remote_mem_bytes=16 * MIB),
                         memory_backend=backend)
    region = system.mmap(3 * MIB)
    pages = region.size // PAGE_SIZE
    rng = random.Random(seed)
    for i in range(pages):
        system.memory.write(region.base + i * PAGE_SIZE,
                            bytes([i % 251]) * 32)
    system.clock.advance(5000)
    victims = rng.sample(range(3), 2)
    for v in victims:
        nodes[v].fail()
    for i in range(0, pages, 5):
        assert system.memory.read(region.base + i * PAGE_SIZE, 32) == \
            bytes([i % 251]) * 32
