"""Unit tests for byte/page arithmetic."""

import pytest

from repro.common import units


def test_constants():
    assert units.PAGE_SIZE == 4096
    assert 1 << units.PAGE_SHIFT == units.PAGE_SIZE
    assert units.GIB == 1024 * units.MIB == 1024 * 1024 * units.KIB


def test_align_down():
    assert units.align_down(0) == 0
    assert units.align_down(4095) == 0
    assert units.align_down(4096) == 4096
    assert units.align_down(8191) == 4096
    assert units.align_down(70, 64) == 64


def test_align_up():
    assert units.align_up(0) == 0
    assert units.align_up(1) == 4096
    assert units.align_up(4096) == 4096
    assert units.align_up(4097) == 8192
    assert units.align_up(70, 64) == 128


def test_pages_spanned_basics():
    assert units.pages_spanned(0, 0) == 0
    assert units.pages_spanned(0, 1) == 1
    assert units.pages_spanned(0, 4096) == 1
    assert units.pages_spanned(0, 4097) == 2
    assert units.pages_spanned(4095, 2) == 2
    assert units.pages_spanned(4096, 4096) == 1


def test_format_bytes():
    assert units.format_bytes(512) == "512B"
    assert units.format_bytes(2048) == "2KiB"
    assert units.format_bytes(int(2.5 * units.GIB)) == "2.5GiB"
