"""Golden-master determinism suite.

Fixed-seed end-to-end runs of DiLOS, Fastswap, and AIFM over a small
sequential-read and Redis workload, pinned to a SHA-256 digest of the
full :class:`~repro.obs.snapshot.MetricsSnapshot` (every counter, gauge,
breakdown and histogram summary, plus the final simulated clock).

The digests below were captured on the *unoptimized* hot path, before the
coalesced-TLB/fast-clock work landed. Any refactor that shifts simulated
time or any canonical metric — even by one count — fails here loudly;
that is the contract that lets the hot path be rewritten freely.

If a change *intentionally* alters simulated behavior (a new latency
component, a new metric), re-capture with::

    PYTHONPATH=src python tests/test_golden_master.py

and update ``GOLDEN`` in the same commit, explaining why in its message.
"""

from __future__ import annotations

import pytest

from repro.common.units import MIB

#: scenario -> (metrics digest, final simulated clock in us).
GOLDEN = {
    "seqread_dilos": (
        "82f68d85aa88a847569fcc953fea561e461c6a6a5fc87d10657f3567a82ee93f",
        527.5879199999995),
    "seqread_fastswap": (
        "0db0fcfbc87f7b421a57c0bb0ccedfd6b19c8fb0d70cd826ee735dfe9da36217",
        2187.0835519999628),
    "seqscan_aifm": (
        "aa8168eb9db9d59bb2918a03a064a9fc4913fc233216b8b708a07a95610eb6f1",
        14.888069565217304),
    "redis_get_dilos": (
        "4688a2b5e4f86b069c0c959b6ba52a7bbaeaacaa779d5a8c3fb21813dc8c7965",
        5362.223680695648),
    "redis_get_fastswap": (
        "16bcfef36370161a3ea18e9e18dfe35d8f705ffe8f6e06c62614731a61947533",
        5899.989016695649),
    "kmeans_dilos": (
        "e6414fdf35a08e3e53cdf640213262d32dfe4727e999788af7a98f9712b748c6",
        160.3185391304348),
    "dataframe_dilos": (
        "6cdd6fe25f70a1a625f18c3b97e96ddb2f1d910873306d682f2a41d0a9a3456c",
        372.0654045217385),
    # The *_batch scenarios force the vectorized batch engine on and are
    # pinned to the SAME digests as their scalar counterparts above: the
    # batch engine's exactness contract (see repro/mem/batch.py) is that
    # span-vectorized execution changes nothing the simulation observes.
    "redis_get_dilos_batch": (
        "4688a2b5e4f86b069c0c959b6ba52a7bbaeaacaa779d5a8c3fb21813dc8c7965",
        5362.223680695648),
    "kmeans_dilos_batch": (
        "e6414fdf35a08e3e53cdf640213262d32dfe4727e999788af7a98f9712b748c6",
        160.3185391304348),
    "dataframe_dilos_batch": (
        "6cdd6fe25f70a1a625f18c3b97e96ddb2f1d910873306d682f2a41d0a9a3456c",
        372.0654045217385),
    # LLM inference: prefill writes + windowed random decode gathers over
    # the paged KV cache (see repro/apps/llm.py).
    "llm_dilos": (
        "5c2712afaa8e365d5c16c9c60a3759f9c31db2523afc6698f165dc924d5667a9",
        106.2514086956507),
    "llm_fastswap": (
        "93abac674986ec97196d24fecff9c2ca99376c2c35b29e52e679f604386f7944",
        126.0914086956507),
    "llm_aifm": (
        "f9ff1806039b972ddc774f3ecaf25cb4a9c59f7ad1d9527288f26313a69e588c",
        125.61444730435211),
    # Deliberately the SAME row as llm_dilos: a healthy sharded backend
    # changes page *placement*, never anything the simulation observes.
    "llm_dilos_sharded": (
        "5c2712afaa8e365d5c16c9c60a3759f9c31db2523afc6698f165dc924d5667a9",
        106.2514086956507),
    # Batch twin, same digest as the scalar run — the exactness contract.
    "llm_dilos_batch": (
        "5c2712afaa8e365d5c16c9c60a3759f9c31db2523afc6698f165dc924d5667a9",
        106.2514086956507),
    # The replicated KV service under the full chaos schedule (lossy
    # wire, lease-holder kill, rejoin + background resilver at serving
    # load); the digest includes the end-of-run lost-update audit.
    "kv_failover": (
        "69916c60cde3dfb0b14a49af9278085817846c0d68ebc85aa35095375ac6b507",
        1006.9989255652341),
}


def _run_seqread(kind: str):
    from repro.apps.seqrw import SequentialWorkload
    from repro.harness import local_bytes_for, make_system

    workload = SequentialWorkload(1 * MIB)
    system = make_system(kind,
                         local_bytes_for(workload.footprint_bytes, 0.25))
    workload.run(system, "read", verify=True)
    return system


def _run_seqscan_aifm():
    from repro.baselines.aifm import RemArray
    from repro.harness import local_bytes_for, make_system

    count, item = 512, 128
    system = make_system("aifm-rdma", local_bytes_for(count * item, 0.25))
    array = RemArray(system, count, item)
    for i in range(count):
        array.set(i, (i & 0xFF).to_bytes(1, "little") * item)
    for i, data in enumerate(array.scan()):
        assert data[0] == (i & 0xFF)
    return system


def _run_redis_get(kind: str):
    from repro.alloc import Mimalloc
    from repro.apps.redis import GetWorkload, RedisServer
    from repro.harness import local_bytes_for, make_system

    workload = GetWorkload(value_size=4096, n_keys=40, n_queries=120)
    system = make_system(kind,
                         local_bytes_for(workload.footprint_bytes, 0.25),
                         remote_bytes=32 * MIB)
    server = RedisServer(system, Mimalloc(system, arena_bytes=8 * MIB))
    workload.populate(server)
    system.clock.advance(5000)
    workload.drive(server, verify=True)
    return system


def _run_kmeans():
    from repro.apps.kmeans import KMeansWorkload
    from repro.harness import local_bytes_for, make_system

    workload = KMeansWorkload(n_points=1 << 11, dim=8, clusters=4,
                              iterations=2)
    system = make_system("dilos-readahead",
                         local_bytes_for(workload.footprint_bytes, 0.25))
    workload.run(system)
    return system


def _run_dataframe():
    from repro.apps.dataframe import TaxiAnalyticsWorkload
    from repro.harness import local_bytes_for, make_system

    workload = TaxiAnalyticsWorkload(rows=1 << 13)
    system = make_system("dilos-readahead",
                         local_bytes_for(workload.footprint_bytes, 0.25))
    workload.run(system)
    return system


def _run_llm(kind: str, backend: str = "node"):
    from repro.apps.llm import LlmWorkload
    from repro.harness import local_bytes_for, make_system

    workload = LlmWorkload(n_requests=4, seed=31)
    system = make_system(kind,
                         local_bytes_for(workload.footprint_bytes, 0.25),
                         backend=backend)
    workload.run(system)
    return system


def _run_kv_failover():
    from repro.harness.scenarios import kv_failover

    cluster, _report = kv_failover()
    return cluster


def _forced(builder, batch_on: bool):
    """Pin ``builder`` to one execution engine: the ``*_batch`` scenarios
    force the vectorized span path, their scalar counterparts force the
    per-page loops. Both land on the same GOLDEN row values — that
    equality is the batch engine's whole contract."""
    def run():
        from repro.mem import batch
        with batch.force(batch_on):
            return builder()
    return run


SCENARIOS = {
    "seqread_dilos": lambda: _run_seqread("dilos-readahead"),
    "seqread_fastswap": lambda: _run_seqread("fastswap"),
    "seqscan_aifm": _run_seqscan_aifm,
    "redis_get_dilos":
        _forced(lambda: _run_redis_get("dilos-readahead"), False),
    "redis_get_fastswap": lambda: _run_redis_get("fastswap"),
    "kmeans_dilos": _forced(_run_kmeans, False),
    "dataframe_dilos": _forced(_run_dataframe, False),
    "redis_get_dilos_batch":
        _forced(lambda: _run_redis_get("dilos-readahead"), True),
    "kmeans_dilos_batch": _forced(_run_kmeans, True),
    "dataframe_dilos_batch": _forced(_run_dataframe, True),
    "llm_dilos": _forced(lambda: _run_llm("dilos-readahead"), False),
    "llm_fastswap": lambda: _run_llm("fastswap"),
    "llm_aifm": lambda: _run_llm("aifm-rdma"),
    "llm_dilos_sharded":
        lambda: _run_llm("dilos-readahead", backend="sharded:2"),
    "llm_dilos_batch": _forced(lambda: _run_llm("dilos-readahead"), True),
    "kv_failover": _run_kv_failover,
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_master(name):
    system = SCENARIOS[name]()
    snapshot = system.metrics()
    want_digest, want_clock = GOLDEN[name]
    assert system.clock.now == want_clock, (
        f"{name}: simulated clock moved — {system.clock.now} us, "
        f"golden {want_clock} us. A hot-path change altered simulated "
        "time; fix it or deliberately re-capture (see module docstring).")
    assert snapshot.digest() == want_digest, (
        f"{name}: metrics digest changed while the clock matched — some "
        "counter/gauge/histogram shifted. Diff the canonical JSON:\n"
        f"{snapshot.canonical_json()}")


def test_digest_is_stable_within_process():
    """Two identical runs in one process must collide on the digest."""
    first = SCENARIOS["seqread_dilos"]().metrics().digest()
    second = SCENARIOS["seqread_dilos"]().metrics().digest()
    assert first == second


if __name__ == "__main__":
    for name in sorted(SCENARIOS):
        system = SCENARIOS[name]()
        print(f'    "{name}": (\n'
              f'        "{system.metrics().digest()}",\n'
              f'        {system.clock.now!r}),')
