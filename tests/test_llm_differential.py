"""Differential suite: the LLM workload's determinism invariant.

The token-level inference model (:mod:`repro.apps.llm`) derives every
KV-cache byte and every sampled token from seeds alone, so the *token
stream* and the *KV-cache bytes* (both folded into digests) are a pure
function of ``(config, request seeds)`` — never of where the bytes
lived or how they moved. This suite checks that invariant everywhere
the simulator can vary placement and movement:

* across kernels (DiLOS, Fastswap, the AIFM port) and local-memory
  ratios — paging and eviction must not perturb a byte;
* batch vs scalar execution engines, byte-, clock- and digest-exact;
* under seeded ``net_faults`` plans, where remote transfers ride the
  reliable transport's drop/delay schedule — timing moves, data never;
* single-node vs every prefill/decode disaggregation split, where KV
  caches are handed between tenants through explicit transfers.
"""

from __future__ import annotations

import functools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.llm import PD_CONFIG, LlmConfig, LlmWorkload, run_pd
from repro.harness import local_bytes_for, make_system
from repro.mem import batch
from repro.net.faults import RetryPolicy

#: Small enough that one generate() run is milliseconds, big enough
#: that quarter-local runs actually page (4 layers of KV per token).
_CONFIG = LlmConfig(layers=2, heads=2, head_dim=16, max_tokens=64,
                    attn_window=4)
_KINDS = ["dilos-readahead", "fastswap", "aifm-rdma"]


def _run_single(kind: str, seed: int, ratio: float = 0.25,
                n: int = 3, batch_on=None, net_faults=None,
                backend="node", config: LlmConfig = _CONFIG,
                **bounds):
    workload = LlmWorkload(n_requests=n, seed=seed, config=config,
                           prompt_min=bounds.get("prompt_min", 8),
                           prompt_max=bounds.get("prompt_max", 24),
                           out_min=bounds.get("out_min", 3),
                           out_max=bounds.get("out_max", 8))
    extra = {}
    if net_faults is not None:
        extra = {"net_faults": net_faults,
                 "net_retry": RetryPolicy(max_attempts=12)}
    system = make_system(kind,
                         local_bytes_for(workload.footprint_bytes, ratio),
                         backend=backend, **extra)
    if batch_on is None:
        result = workload.run(system)
    else:
        with batch.force(batch_on):
            result = workload.run(system)
    return result, system


@functools.lru_cache(maxsize=None)
def _reference(seed: int):
    """Ground truth: everything local, DiLOS, default engine."""
    result, _ = _run_single("dilos-readahead", seed, ratio=1.0)
    return result.token_digest, result.kv_digest, result.decoded_tokens


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2 ** 16),
       kind=st.sampled_from(_KINDS),
       ratio=st.sampled_from([0.125, 0.5, 1.0]))
def test_tokens_invariant_across_kernels_and_ratios(seed, kind, ratio):
    """Same seeds -> same token stream and KV bytes on every kernel at
    every memory ratio: paging/eviction never perturbs a byte."""
    want_tok, want_kv, want_n = _reference(seed)
    result, _ = _run_single(kind, seed, ratio=ratio)
    assert result.token_digest == want_tok, (
        f"{kind}@{ratio}: token stream diverged from the all-local run")
    assert result.kv_digest == want_kv, (
        f"{kind}@{ratio}: KV-cache bytes diverged")
    assert result.decoded_tokens == want_n


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2 ** 16),
       kind=st.sampled_from(["dilos-readahead", "fastswap"]))
def test_batch_matches_scalar_exactly(seed, kind):
    """The vectorized engine is invisible: not just tokens but the
    simulated clock and the full metrics digest must collide."""
    b, b_sys = _run_single(kind, seed, batch_on=True)
    s, s_sys = _run_single(kind, seed, batch_on=False)
    assert b.token_digest == s.token_digest
    assert b.kv_digest == s.kv_digest
    assert b_sys.clock.now == s_sys.clock.now
    assert b_sys.metrics().digest() == s_sys.metrics().digest()


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 2 ** 12),
       fault_seed=st.integers(0, 2 ** 16))
def test_net_faults_change_timing_never_tokens(seed, fault_seed):
    """Dropped and delayed remote transfers (with retries) on a sharded
    backend: the wire gets slower, the answer stays identical."""
    want_tok, want_kv, _ = _reference(seed)
    plan = f"drop=0.03,delay=0.03,delay_us=12,seed={fault_seed}"
    result, _ = _run_single("dilos-readahead", seed, net_faults=plan,
                            backend="sharded:2")
    assert result.token_digest == want_tok, (
        f"net-fault plan {plan!r} corrupted the token stream")
    assert result.kv_digest == want_kv


@functools.lru_cache(maxsize=None)
def _pd_reference(seed: int):
    """Single-node ground truth matching run_pd's request distribution."""
    result, _ = _run_single("dilos-readahead", seed, ratio=1.0, n=6,
                            config=PD_CONFIG, prompt_min=24, prompt_max=56,
                            out_min=8, out_max=16)
    return result.token_digest, result.kv_digest, result.decoded_tokens


@settings(max_examples=6, deadline=None)
@given(split=st.sampled_from(["1:1", "3:1", "1:3", "2:2"]),
       kind=st.sampled_from(["dilos-readahead", "fastswap"]),
       seed=st.integers(0, 2 ** 10),
       ratio=st.sampled_from([0.25, 1.0]))
def test_pd_split_matches_single_node(split, kind, seed, ratio):
    """Prefill/decode disaggregation relocates the KV cache through
    explicit transfers and re-orders work across tenants — the token
    stream and KV bytes still match the single-node run exactly."""
    want_tok, want_kv, want_n = _pd_reference(seed)
    pd = run_pd(kind, ratio=ratio, split=split, n_requests=6, seed=seed)
    assert pd.token_digest == want_tok, (
        f"{kind} {split}@{ratio}: disaggregated token stream diverged")
    assert pd.kv_digest == want_kv
    assert pd.decoded_tokens == want_n
    assert pd.kv_transfer_bytes > 0, "P:D ran without any KV transfer"


@settings(max_examples=3, deadline=None)
@given(fault_seed=st.integers(0, 2 ** 16))
def test_pd_under_net_faults_matches_single_node(fault_seed):
    """The full gauntlet at once: disaggregated, sharded, faulty wire."""
    want_tok, want_kv, _ = _pd_reference(31)
    plan = f"drop=0.02,delay=0.02,delay_us=10,seed={fault_seed}"
    pd = run_pd("dilos-readahead", ratio=0.25, split="1:2",
                n_requests=6, seed=31, net_faults=plan,
                net_retry=RetryPolicy(max_attempts=12))
    assert pd.token_digest == want_tok
    assert pd.kv_digest == want_kv
