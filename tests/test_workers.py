"""Tests for multi-worker interleaving, including the §4.2 FETCHING-PTE
duplicate-fetch suppression across concurrent faulters."""

import pytest

from repro.common.units import MIB, PAGE_SIZE
from repro.core import DilosConfig, DilosSystem
from repro.sim import Workers, cpu, read, touch, write


def make_system(local_mib=1, prefetcher="none"):
    return DilosSystem(DilosConfig(local_mem_bytes=int(local_mib * MIB),
                                   remote_mem_bytes=64 * MIB,
                                   prefetcher=prefetcher))


class TestBasics:
    def test_single_worker_runs_to_completion(self):
        system = make_system()
        region = system.mmap(1 * MIB)

        def worker():
            yield write(region.base, b"solo")
            data = yield read(region.base, 4)
            assert data == b"solo"
            yield cpu(2.0)

        pool = Workers([worker()])
        elapsed = pool.run(system)
        assert pool.ops_executed == 3
        assert elapsed >= 2.0

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            Workers([])

    def test_interleaving_is_round_robin(self):
        system = make_system()
        region = system.mmap(1 * MIB)
        order = []

        def worker(tag):
            for i in range(3):
                order.append((tag, i))
                yield cpu(0.1)

        Workers([worker("a"), worker("b")]).run(system)
        assert order == [("a", 0), ("b", 0), ("a", 1), ("b", 1),
                         ("a", 2), ("b", 2)]

    def test_data_dependent_access(self):
        """Workers can pointer-chase: the read result feeds the next op."""
        system = make_system()
        region = system.mmap(1 * MIB)
        target = region.base + 8 * PAGE_SIZE
        system.memory.write(region.base, target.to_bytes(8, "little"))
        system.memory.write(target, b"followed")

        def chaser():
            raw = yield read(region.base, 8)
            where = int.from_bytes(raw, "little")
            data = yield read(where, 8)
            assert data == b"followed"

        Workers([chaser()]).run(system)

    def test_unbalanced_workers(self):
        system = make_system()
        counts = {"short": 0, "long": 0}

        def worker(tag, n):
            for _ in range(n):
                counts[tag] += 1
                yield cpu(0.01)

        Workers([worker("short", 2), worker("long", 20)]).run(system)
        assert counts == {"short": 2, "long": 20}


class TestConcurrentFaulting:
    def test_duplicate_fetch_suppressed(self):
        """Two workers fault on the same cold page: one RDMA read total."""
        system = make_system(local_mib=1)
        region = system.mmap(4 * MIB)
        pages = region.size // PAGE_SIZE
        for i in range(pages):
            system.memory.write(region.base + i * PAGE_SIZE,
                                bytes([i % 251]) * 32)
        system.clock.advance(5000)  # evict everything

        target = region.base  # both workers hit the same cold page
        results = []

        def worker():
            data = yield read(target, 32)
            results.append(data)

        reads_before = system.kernel.comm.stats.ops_read
        majors_before = system.kernel.counters.get("major_faults")
        Workers([worker(), worker()]).run(system)
        reads_after = system.kernel.comm.stats.ops_read
        assert results == [bytes([0] * 32)] * 2
        # The first worker's fault fetched the page once; the second
        # worker's access is a plain hit — one wire read total.
        assert reads_after - reads_before == 1
        assert system.kernel.counters.get("major_faults") - majors_before == 1

    def test_disjoint_streams_share_the_cache_fairly(self):
        system = make_system(local_mib=1, prefetcher="readahead")
        region = system.mmap(6 * MIB)
        pages = region.size // PAGE_SIZE
        for i in range(pages):
            system.memory.write(region.base + i * PAGE_SIZE,
                                bytes([i % 251]) * 32)
        system.clock.advance(5000)

        def scanner(first, last):
            for i in range(first, last):
                data = yield read(region.base + i * PAGE_SIZE, 32)
                assert data == bytes([i % 251]) * 32
                yield cpu(0.3)

        half = pages // 2
        pool = Workers([scanner(0, half), scanner(half, pages)])
        pool.run(system)
        assert pool.ops_executed == 2 * pages
        assert system.kernel.counters.get("direct_reclaims") == 0

    def test_many_workers_on_hot_page_cheap(self):
        system = make_system(local_mib=1)
        region = system.mmap(1 * MIB)
        system.memory.write(region.base, b"hot")

        def toucher():
            for _ in range(50):
                yield read(region.base, 3)

        t0 = system.clock.now
        Workers([toucher() for _ in range(8)]).run(system)
        # 400 warm reads: all TLB/cache hits, only copy time.
        assert system.clock.now - t0 < 10.0
