"""Tests for the extension features: stride prefetcher, media profiles,
and the BC frontier guide."""

import pytest

from repro.common.units import MIB, PAGE_SIZE
from repro.core import DilosConfig, DilosSystem
from repro.core.prefetch import StridePrefetcher, make_prefetcher
from repro.harness import local_bytes_for, make_system
from repro.net.media import MEDIA_PROFILES, hdd, nvme_flash, rdma_100g, sata_ssd
from repro.apps.gapbs import (
    BcFrontierGuide,
    BetweennessWorkload,
    CsrGraph,
    generate_power_law_graph,
)


class FakeOps:
    def __init__(self, hit=1.0):
        self.requests = []
        self._hit = hit

    def prefetch(self, vpn):
        self.requests.append(vpn)
        return True

    def hit_ratio(self):
        return self._hit

    def recent_faults(self):
        return []


class TestStridePrefetcher:
    def test_registered_in_factory(self):
        assert isinstance(make_prefetcher("stride"), StridePrefetcher)

    def test_single_forward_stream(self):
        pf = StridePrefetcher(max_window=4)
        ops = FakeOps()
        for vpn in (100, 101, 102, 103):
            pf.on_major_fault(vpn, ops)
        assert 104 in ops.requests

    def test_two_interleaved_streams(self):
        """The pattern trend-based cannot handle: partition-style access
        from both ends of an array."""
        pf = StridePrefetcher(max_window=2)
        ops = FakeOps()
        low = list(range(0, 8))
        high = list(range(10_000, 10_000 - 8, -1))
        for a, b in zip(low, high):
            pf.on_major_fault(a, ops)
            pf.on_major_fault(b, ops)
        assert low[-1] + 1 in ops.requests       # forward stream predicted
        assert high[-1] - 1 in ops.requests      # backward stream predicted

    def test_trend_mispredicts_interleaved_streams(self):
        """Contrast: the majority vote over alternating deltas never
        predicts either stream's true next page."""
        from repro.core.prefetch import TrendPrefetcher
        pf = TrendPrefetcher(max_window=4)
        ops = FakeOps()
        for a, b in zip(range(0, 12), range(10_000, 10_012)):
            pf.on_major_fault(a, ops)
            pf.on_major_fault(b, ops)
        assert 12 not in ops.requests       # next of the low stream
        assert 10_012 not in ops.requests   # next of the high stream

    def test_no_prefetch_before_confidence(self):
        pf = StridePrefetcher()
        ops = FakeOps()
        pf.on_major_fault(10, ops)
        pf.on_major_fault(12, ops)  # stride learned, confidence 1
        assert ops.requests == []

    def test_stream_table_eviction(self):
        pf = StridePrefetcher(max_streams=2)
        ops = FakeOps()
        for base in (0, 1000, 2000, 3000):
            pf.on_major_fault(base, ops)
        assert len(pf._streams) == 2

    def test_random_access_is_quiet(self):
        import random
        rng = random.Random(9)
        pf = StridePrefetcher()
        ops = FakeOps()
        for _ in range(100):
            pf.on_major_fault(rng.randrange(1 << 24), ops)
        assert len(ops.requests) < 10

    def test_end_to_end_on_dilos(self):
        system = DilosSystem(DilosConfig(local_mem_bytes=1 * MIB,
                                         remote_mem_bytes=32 * MIB,
                                         prefetcher="stride"))
        region = system.mmap(4 * MIB)
        pages = region.size // PAGE_SIZE
        for i in range(pages):
            system.memory.write(region.base + i * PAGE_SIZE, b"s" * 32)
        for i in range(pages):
            system.memory.read(region.base + i * PAGE_SIZE, 32)
        m = system.metrics()
        assert m["prefetches_issued"] > 0
        assert m["major_faults"] < pages


class TestMediaProfiles:
    def test_profiles_ordered_by_speed(self):
        lat = {name: factory().rdma_read_latency(PAGE_SIZE)
               for name, factory in MEDIA_PROFILES.items()}
        assert lat["rdma-100g"] < lat["nvme-flash"] < lat["sata-ssd"] < lat["hdd"]

    def test_software_costs_unchanged(self):
        base = rdma_100g()
        for factory in (nvme_flash, sata_ssd, hdd):
            profile = factory()
            assert profile.hw_exception == base.hw_exception
            assert profile.fastswap_minor_fault == base.fastswap_minor_fault
            assert profile.dilos_map == base.dilos_map

    def test_dilos_runs_on_nvme(self):
        system = make_system("dilos-readahead", 1 * MIB,
                             latency=nvme_flash())
        region = system.mmap(4 * MIB)
        pages = region.size // PAGE_SIZE
        for i in range(pages):
            system.memory.write(region.base + i * PAGE_SIZE,
                                bytes([i % 251]) * 32)
        for i in range(pages):
            assert system.memory.read(region.base + i * PAGE_SIZE, 32) == \
                bytes([i % 251]) * 32


class TestBcFrontierGuide:
    @staticmethod
    def setup_run(use_guide):
        offsets, edges = generate_power_law_graph(n=4096, target_m=50_000,
                                                  seed=5)
        footprint = (len(offsets) + len(edges)) * 8
        system = make_system("dilos-readahead",
                             local_bytes_for(footprint, 0.125))
        graph = CsrGraph(system, offsets, edges)
        guide = None
        if use_guide:
            guide = BcFrontierGuide(graph)
            guide.bind(system)
        workload = BetweennessWorkload(n_sources=2)
        result = workload.run(system, graph,
                              sources=workload.pick_sources(graph),
                              guide=guide)
        return result, guide

    def test_guide_speeds_up_bc(self):
        baseline, _ = self.setup_run(use_guide=False)
        guided, guide = self.setup_run(use_guide=True)
        assert guide.vertices_chased > 0
        assert guide.edge_pages_prefetched > 0
        assert guided.elapsed_us < 0.9 * baseline.elapsed_us

    def test_guide_preserves_result(self):
        baseline, _ = self.setup_run(use_guide=False)
        guided, _ = self.setup_run(use_guide=True)
        assert guided.top_vertex == baseline.top_vertex

    def test_unbound_guide_rejected(self):
        offsets, edges = generate_power_law_graph(n=256, target_m=1000)
        system = make_system("dilos-none", 1 * MIB)
        guide = BcFrontierGuide(CsrGraph(system, offsets, edges))
        with pytest.raises(RuntimeError):
            guide.on_frontier([1, 2, 3])


class TestPatternWorkload:
    def test_unknown_pattern_rejected(self):
        from repro.apps.patterns import PatternWorkload
        with pytest.raises(ValueError):
            PatternWorkload("spiral")

    def test_patterns_cover_all_pages_where_expected(self):
        import random
        from repro.apps.patterns import PATTERNS
        rng = random.Random(1)
        for name in ("sequential", "reverse", "interleaved"):
            order = PATTERNS[name](64, rng)
            assert sorted(order) == list(range(64)), name

    def test_strided_skips(self):
        import random
        from repro.apps.patterns import strided
        order = strided(64, random.Random(1), stride=4)
        assert order == list(range(0, 64, 4))

    def test_pattern_run_verifies_data(self):
        from repro.apps.patterns import PatternWorkload
        workload = PatternWorkload("random", working_set_bytes=1 * MIB)
        system = make_system("dilos-trend",
                             local_bytes_for(workload.footprint_bytes, 0.25))
        result = workload.run(system)
        assert result.accesses == 256
        assert result.us_per_access > 0
