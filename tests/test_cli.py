"""Tests for the ``python -m repro`` command-line runner."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["levitate"])

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["seqrw", "--system", "windows"])

    def test_defaults(self):
        args = build_parser().parse_args(["seqrw"])
        assert args.system == "dilos-readahead"
        assert args.ratio == 0.125
        assert args.mode == "read"


class TestCommands:
    def test_systems(self, capsys):
        assert main(["systems"]) == 0
        out = capsys.readouterr().out
        assert "fastswap" in out
        assert "dilos-readahead" in out

    def test_seqrw(self, capsys):
        assert main(["seqrw", "--ws-mib", "2"]) == 0
        out = capsys.readouterr().out
        assert "GB/s" in out
        assert "major_faults" in out

    def test_seqrw_on_fastswap(self, capsys):
        assert main(["seqrw", "--ws-mib", "2", "--system", "fastswap",
                     "--mode", "write"]) == 0
        assert "Fastswap" in capsys.readouterr().out

    def test_quicksort(self, capsys):
        assert main(["quicksort", "--count", "8192"]) == 0
        assert "sorted" in capsys.readouterr().out

    def test_kmeans(self, capsys):
        assert main(["kmeans", "--points", "4096"]) == 0
        assert "inertia" in capsys.readouterr().out

    def test_snappy_aifm(self, capsys):
        assert main(["snappy", "--system", "aifm", "--mode",
                     "decompress"]) == 0
        assert "snappy decompress" in capsys.readouterr().out

    def test_taxi(self, capsys):
        assert main(["taxi", "--rows", "8192"]) == 0
        out = capsys.readouterr().out
        assert "mean_fare" in out

    def test_pagerank(self, capsys):
        assert main(["pagerank", "--nodes", "1024", "--edges", "8000"]) == 0
        assert "top vertex" in capsys.readouterr().out

    def test_bc_with_guide(self, capsys):
        assert main(["bc", "--nodes", "1024", "--edges", "8000",
                     "--guide"]) == 0
        assert "app-aware guide" in capsys.readouterr().out

    def test_bc_guide_requires_dilos(self, capsys):
        assert main(["bc", "--nodes", "1024", "--edges", "8000",
                     "--guide", "--system", "fastswap"]) == 2

    def test_redis_get(self, capsys):
        assert main(["redis-get", "--value-size", "4096", "--keys", "100",
                     "--queries", "100"]) == 0
        assert "req/s" in capsys.readouterr().out

    def test_redis_lrange_app_aware(self, capsys):
        assert main(["redis-lrange", "--queries", "100",
                     "--app-aware"]) == 0
        assert "req/s" in capsys.readouterr().out

    def test_redis_app_aware_requires_dilos(self, capsys):
        assert main(["redis-get", "--system", "fastswap",
                     "--app-aware"]) == 2

    def test_repair_lifecycle(self, capsys):
        assert main(["repair", "--backend", "replicated:2"]) == 0
        out = capsys.readouterr().out
        assert "repair lifecycle" in out
        assert "repair.pages_resilvered" in out
        assert "metrics digest" in out

    def test_repair_rejects_non_redundant_backend(self, capsys):
        assert main(["repair", "--backend", "sharded:2"]) == 2
        assert "redundant" in capsys.readouterr().err

    def test_kv_failover_preset(self, capsys):
        assert main(["kv", "--requests", "300", "--once"]) == 0
        out = capsys.readouterr().out
        assert "availability / consistency" in out
        assert "0 lost updates" in out
        assert "failovers" in out
        assert "metrics digest" in out

    def test_kv_determinism_gate(self, capsys):
        assert main(["kv", "--requests", "200"]) == 0
        assert "determinism: OK" in capsys.readouterr().out

    def test_kv_rejects_non_redundant_backend(self, capsys):
        assert main(["kv", "--backend", "sharded:2", "--once"]) == 2
        assert capsys.readouterr().err.startswith("error:")


class TestLlmCommands:
    def test_llm_single_node(self, capsys):
        assert main(["llm", "--requests", "3"]) == 0
        out = capsys.readouterr().out
        assert "tokens decoded" in out
        assert "token digest:" in out
        assert "mean TTFT" in out

    def test_llm_pd_mode(self, capsys):
        assert main(["llm", "--requests", "4", "--pd-split", "1:1"]) == 0
        out = capsys.readouterr().out
        assert "P:D 1:1" in out
        assert "KV transferred" in out
        assert "per-tenant" in out

    def test_llm_pd_rejects_aifm(self, capsys):
        assert main(["llm", "--system", "aifm", "--pd-split", "1:1"]) == 2
        assert "AIFM" in capsys.readouterr().err

    def test_llm_sweep_tiny_grid(self, capsys):
        assert main(["sweep", "llm", "--systems", "dilos-readahead",
                     "--pd-splits", "1:1", "--ratios", "1.0",
                     "--size", "3"]) == 0
        out = capsys.readouterr().out
        assert "best P:D split per local-memory ratio" in out

    # The sweep's grid validation must run before any --jobs pool
    # worker spawns: a SystemExit inside a worker hangs the map, so
    # every bad configuration has to die up front with exit 2.

    def test_llm_sweep_rejects_aifm_up_front(self, capsys):
        assert main(["sweep", "llm", "--systems", "aifm-rdma",
                     "--jobs", "2"]) == 2
        assert "AIFM tenants cannot join" in capsys.readouterr().err

    def test_llm_sweep_rejects_multiple_kernels(self, capsys):
        assert main(["sweep", "llm", "--systems", "dilos-readahead",
                     "fastswap"]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_llm_sweep_rejects_malformed_split(self, capsys):
        assert main(["sweep", "llm", "--systems", "dilos-readahead",
                     "--pd-splits", "3-1"]) == 2
        assert "bad P:D split" in capsys.readouterr().err

    def test_pd_splits_rejected_for_other_workloads(self, capsys):
        assert main(["sweep", "quicksort", "--pd-splits", "1:1"]) == 2
        assert "only applies to the llm sweep" in capsys.readouterr().err
