"""Integration tests for the Redis stack: data structures, server
commands, workloads, and the §6.3 app-aware guide."""

import pytest

from repro.common.units import MIB
from repro.alloc import Mimalloc, MimallocGuide
from repro.core import DilosConfig, DilosSystem
from repro.baselines.fastswap import FastswapConfig, FastswapSystem
from repro.apps.redis import (
    DelGetWorkload,
    GetWorkload,
    LRangeWorkload,
    Quicklist,
    RedisPrefetchGuide,
    RedisServer,
    sds_len,
    sds_new,
    sds_read,
    ziplist_entries,
    ziplist_new,
    ziplist_read_range,
)


def make_server(local_mib=2.0, prefetcher="readahead", guide=None,
                guided_paging=False, arena_mib=128):
    config = DilosConfig(local_mem_bytes=int(local_mib * MIB),
                         remote_mem_bytes=512 * MIB,
                         prefetcher=prefetcher, guided_paging=guided_paging)
    system = DilosSystem(config)
    alloc = Mimalloc(system, arena_bytes=arena_mib * MIB)
    if guided_paging:
        system.kernel.register_allocator_guide(MimallocGuide(alloc))
    return RedisServer(system, alloc, guide=guide)


class TestSds:
    def test_roundtrip(self):
        server = make_server()
        va = sds_new(server.system, server.alloc, b"hello sds")
        assert sds_len(server.system, va) == 9
        assert sds_read(server.system, va) == b"hello sds"

    def test_large_value_spans_pages(self):
        server = make_server()
        blob = bytes(range(256)) * 64  # 16 KiB
        va = sds_new(server.system, server.alloc, blob)
        assert sds_read(server.system, va) == blob


class TestZiplist:
    def test_roundtrip(self):
        server = make_server()
        values = [b"a", b"bb", b"ccc" * 10]
        va = ziplist_new(server.system, server.alloc, values)
        assert ziplist_entries(server.system, va) == 3
        assert ziplist_read_range(server.system, va, 10) == values

    def test_partial_range(self):
        server = make_server()
        values = [bytes([i]) * 4 for i in range(20)]
        va = ziplist_new(server.system, server.alloc, values)
        assert ziplist_read_range(server.system, va, 5) == values[:5]


class TestQuicklist:
    def test_lrange_traversal(self):
        server = make_server()
        ql = Quicklist(server.system, server.alloc, fill=4)
        values = [b"item-%03d" % i for i in range(30)]
        ql.push_values(values)
        assert ql.length == 30
        assert ql.node_count == 8  # ceil(30/4)
        assert ql.lrange(10) == values[:10]
        assert ql.lrange(100) == values

    def test_incremental_push_links_nodes(self):
        server = make_server()
        ql = Quicklist(server.system, server.alloc, fill=4)
        for i in range(10):
            ql.push_values([b"v%d" % i])
        assert ql.lrange(10) == [b"v%d" % i for i in range(10)]

    def test_free_releases_allocations(self):
        server = make_server()
        ql = Quicklist(server.system, server.alloc, fill=4)
        ql.push_values([b"x" * 16] * 12)
        live_before = server.alloc.live_allocations
        ql.free()
        assert server.alloc.live_allocations < live_before
        assert ql.lrange(5) == []


class TestServer:
    def test_set_get_del(self):
        server = make_server()
        server.set(b"k", b"v" * 100)
        assert server.get(b"k") == b"v" * 100
        assert server.delete(b"k")
        assert server.get(b"k") is None
        assert not server.delete(b"k")

    def test_overwrite_frees_old_value(self):
        server = make_server()
        server.set(b"k", b"old" * 100)
        live = server.alloc.live_allocations
        server.set(b"k", b"new" * 100)
        assert server.alloc.live_allocations == live

    def test_wrongtype_rejected(self):
        server = make_server()
        server.rpush(b"l", [b"a"])
        with pytest.raises(TypeError):
            server.get(b"l")
        server.set(b"s", b"x")
        with pytest.raises(TypeError):
            server.lrange(b"s", 5)

    def test_guide_requires_dilos(self):
        system = FastswapSystem(FastswapConfig(local_mem_bytes=2 * MIB,
                                               remote_mem_bytes=64 * MIB))
        alloc = Mimalloc(system, arena_bytes=32 * MIB)
        with pytest.raises(ValueError):
            RedisServer(system, alloc, guide=RedisPrefetchGuide())


class TestWorkloads:
    def test_get_workload_verifies(self):
        server = make_server(local_mib=1.0)
        wl = GetWorkload(value_size=4096, n_keys=400, n_queries=300)
        wl.populate(server)
        stats = wl.drive(server, verify=True)
        assert stats.queries == 300
        assert stats.requests_per_second > 0
        assert stats.latencies.count == 300

    def test_mixed_sizes_draw_from_photo_mix(self):
        server = make_server(local_mib=4.0, arena_mib=256)
        wl = GetWorkload(value_size="mixed", n_keys=120, n_queries=60)
        wl.populate(server)
        wl.drive(server, verify=True)

    def test_lrange_workload_verifies(self):
        server = make_server(local_mib=1.0)
        wl = LRangeWorkload(n_lists=100, elems_per_list=32, n_queries=150)
        wl.populate(server)
        stats = wl.drive(server, verify=True)
        assert stats.latencies.count == 150

    def test_delget_workload_runs(self):
        server = make_server(local_mib=1.0)
        wl = DelGetWorkload(n_keys=2000, n_queries=500)
        wl.populate(server)
        wl.run_del_phase(server)
        stats = wl.run_get_phase(server)
        assert stats.queries == 500


class TestAppAwareGuide:
    def test_guide_correctness_on_get(self):
        guide = RedisPrefetchGuide()
        server = make_server(local_mib=1.0, guide=guide)
        wl = GetWorkload(value_size=65536, n_keys=60, n_queries=120)
        wl.populate(server)
        wl.drive(server, verify=True)
        assert guide.get_prefetches > 0

    def test_guide_correctness_on_lrange(self):
        guide = RedisPrefetchGuide()
        server = make_server(local_mib=0.5, guide=guide)
        wl = LRangeWorkload(n_lists=150, elems_per_list=32, n_queries=200)
        wl.populate(server)
        wl.drive(server, verify=True)
        assert guide.chain_fetches > 0

    def test_guide_speeds_up_lrange(self):
        """Figure 10(d): app-aware beats general-purpose prefetchers."""
        def run(guide):
            server = make_server(local_mib=0.4, prefetcher="readahead",
                                 guide=guide)
            wl = LRangeWorkload(n_lists=200, elems_per_list=48, n_queries=250)
            wl.populate(server)
            server.system.clock.advance(3000)
            return wl.drive(server).requests_per_second

        assert run(RedisPrefetchGuide()) > 1.2 * run(None)

    def test_guided_paging_with_redis_del_get(self):
        """Figure 12: guided paging reduces wire traffic on fragmented
        pages and keeps surviving values intact."""
        def run(guided):
            server = make_server(local_mib=0.4, prefetcher="none",
                                 guided_paging=guided)
            wl = DelGetWorkload(n_keys=3000, value_bytes=128, n_queries=800)
            wl.populate(server)
            wl.run_del_phase(server)
            server.system.clock.advance(5000)
            wl.run_get_phase(server)
            stats = server.system.kernel.comm.stats
            return stats.bytes_read + stats.bytes_written

        assert run(True) < run(False)
