"""Integration tests for the Fastswap baseline: swap-cache behaviour,
major/minor fault split, direct reclaim on the fault path, data integrity."""

import random

import pytest

from repro.common.errors import InvalidAddressError
from repro.common.units import MIB, PAGE_SIZE
from repro.baselines.fastswap import FastswapConfig, FastswapSystem
from repro.baselines.fastswap.swap_cache import SwapCache


def make_system(local_mib=2, remote_mib=64, **kwargs):
    return FastswapSystem(FastswapConfig(local_mem_bytes=local_mib * MIB,
                                         remote_mem_bytes=remote_mib * MIB,
                                         **kwargs))


def fill_pattern(i, nbytes=64):
    return bytes((i * 13 + j) % 256 for j in range(nbytes))


def populate(system, region):
    pages = region.size // PAGE_SIZE
    for i in range(pages):
        system.memory.write(region.base + i * PAGE_SIZE, fill_pattern(i))
    return pages


class TestSwapCacheUnit:
    def test_insert_lookup_remove(self):
        cache = SwapCache()
        cache.insert(5, frame=2, ready_time=10.0)
        assert cache.lookup(5) == (2, 10.0)
        assert cache.contains(5)
        assert cache.remove(5) == (2, 10.0)
        assert not cache.contains(5)

    def test_double_insert_rejected(self):
        cache = SwapCache()
        cache.insert(5, 1, 0.0)
        with pytest.raises(ValueError):
            cache.insert(5, 2, 0.0)

    def test_pop_any_ready_respects_io(self):
        cache = SwapCache()
        cache.insert(1, 10, ready_time=100.0)
        assert cache.pop_any_ready(now=50.0) is None
        assert cache.pop_any_ready(now=100.0) == (1, 10)
        assert len(cache) == 0


class TestFaultSplit:
    def test_sequential_read_split_is_one_to_seven(self):
        """Table 1: readahead window 8 => 12.5% major / 87.5% minor."""
        system = make_system(local_mib=2)
        region = system.mmap(16 * MIB)
        pages = populate(system, region)
        for i in range(pages):
            system.memory.read(region.base + i * PAGE_SIZE, 64)
        m = system.metrics()
        total = m["major_faults"] + m["minor_faults"]
        # Most pages fault (the tail of the populate pass is still resident).
        assert total > 0.8 * pages
        major_frac = m["major_faults"] / total
        assert 0.10 < major_frac < 0.20  # ~12.5%, readahead sometimes skips

    def test_no_minor_faults_without_pressure(self):
        system = make_system(local_mib=8)
        region = system.mmap(1 * MIB)
        pages = populate(system, region)
        for i in range(pages):
            system.memory.read(region.base + i * PAGE_SIZE, 8)
        m = system.metrics()
        assert m["major_faults"] == 0
        assert m["minor_faults"] == 0

    def test_random_read_mostly_major(self):
        """Random access defeats readahead: majors dominate."""
        system = make_system(local_mib=1)
        region = system.mmap(8 * MIB)
        pages = populate(system, region)
        rng = random.Random(3)
        for _ in range(1500):
            i = rng.randrange(pages)
            system.memory.read(region.base + i * PAGE_SIZE, 8)
        m = system.metrics()
        assert m["major_faults"] > m["minor_faults"]


class TestReclaim:
    def test_direct_reclaim_on_fault_path(self):
        """Unlike DiLOS, Fastswap reclaims inline at fault time."""
        system = make_system(local_mib=1)
        region = system.mmap(8 * MIB)
        pages = populate(system, region)
        for i in range(pages):
            system.memory.read(region.base + i * PAGE_SIZE, 64)
        m = system.metrics()
        assert m["direct_reclaims"] > 0
        assert system.kernel.breakdown.averages()["reclaim"] > 0

    def test_dirty_eviction_writes_back(self):
        system = make_system(local_mib=1)
        region = system.mmap(4 * MIB)
        populate(system, region)
        system.clock.advance(5000)
        assert system.metrics()["net_bytes_written"] > 0

    def test_write_slower_than_read(self):
        """Table 2: frontswap stores on the critical path halve writes."""
        def bandwidth(mode):
            system = make_system(local_mib=2)
            region = system.mmap(16 * MIB)
            pages = populate(system, region)
            t0 = system.clock.now
            for i in range(pages):
                if mode == "read":
                    system.memory.read(region.base + i * PAGE_SIZE, PAGE_SIZE)
                else:
                    system.memory.write(region.base + i * PAGE_SIZE,
                                        b"\xCD" * PAGE_SIZE)
            return pages * PAGE_SIZE / (system.clock.now - t0)

        assert bandwidth("write") < 0.70 * bandwidth("read")


class TestDataIntegrity:
    def test_sequential_roundtrip(self):
        system = make_system(local_mib=1)
        region = system.mmap(8 * MIB)
        pages = populate(system, region)
        for i in range(pages):
            got = system.memory.read(region.base + i * PAGE_SIZE, 64)
            assert got == fill_pattern(i), f"page {i} corrupted"

    def test_random_mixed_roundtrip(self):
        system = make_system(local_mib=1)
        region = system.mmap(6 * MIB)
        pages = region.size // PAGE_SIZE
        rng = random.Random(11)
        shadow = {}
        for step in range(2500):
            page = rng.randrange(pages)
            va = region.base + page * PAGE_SIZE
            if page in shadow and rng.random() < 0.5:
                assert system.memory.read(va, 64) == shadow[page]
            else:
                data = fill_pattern(step)
                system.memory.write(va, data)
                shadow[page] = data

    def test_swap_cache_page_contents_correct(self):
        """A page read via a minor fault carries the right bytes."""
        system = make_system(local_mib=1)
        region = system.mmap(8 * MIB)
        pages = populate(system, region)
        for i in range(pages):
            system.memory.read(region.base + i * PAGE_SIZE, 64)
        # Second pass: pages come back through major+readahead again.
        for i in range(0, pages, 3):
            assert system.memory.read(region.base + i * PAGE_SIZE, 64) == \
                fill_pattern(i)


class TestBreakdown:
    def test_figure1_component_shape(self):
        """Fetch dominates; reclaim significant; exception ~0.57 us."""
        system = make_system(local_mib=1)
        region = system.mmap(8 * MIB)
        pages = populate(system, region)
        for i in range(pages):
            system.memory.read(region.base + i * PAGE_SIZE, 8)
        avgs = system.kernel.breakdown.averages()
        assert avgs["exception"] == pytest.approx(0.57)
        assert avgs["fetch"] == max(avgs.values())  # largest component
        assert avgs["reclaim"] > 0


class TestTeardown:
    def test_munmap_frees_frames_and_slots(self):
        system = make_system(local_mib=1)
        region = system.mmap(4 * MIB)
        populate(system, region)
        system.munmap(region)
        with pytest.raises(InvalidAddressError):
            system.memory.read(region.base, 1)
        # All local frames returned (kswapd keeps none for a dead region).
        assert system.frames.used_frames == 0
