"""Unit tests for readahead / trend prefetchers and the PTE hit tracker."""

import pytest

from repro.common.clock import Clock
from repro.core.prefetch import (
    NoPrefetcher,
    PteHitTracker,
    ReadaheadPrefetcher,
    TrendPrefetcher,
    make_prefetcher,
)
from repro.core.prefetch.trend import majority_delta
from repro.mem import pte as pte_mod
from repro.mem.page_table import PageTable
from repro.net.latency import LatencyModel


class FakeOps:
    """Records prefetch requests; configurable hit ratio."""

    def __init__(self, hit=1.0):
        self.requests = []
        self._hit = hit

    def prefetch(self, vpn):
        self.requests.append(vpn)
        return True

    def hit_ratio(self):
        return self._hit

    def recent_faults(self):
        return []


class TestFactory:
    def test_names(self):
        assert isinstance(make_prefetcher("none"), NoPrefetcher)
        assert isinstance(make_prefetcher("readahead"), ReadaheadPrefetcher)
        assert isinstance(make_prefetcher("trend"), TrendPrefetcher)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_prefetcher("magic")


class TestReadahead:
    def test_full_window_when_hitting(self):
        pf = ReadaheadPrefetcher(base_window=8)
        ops = FakeOps(hit=1.0)
        pf.on_major_fault(100, ops)
        assert ops.requests == [101, 102, 103, 104, 105, 106, 107]

    def test_window_shrinks_on_misses(self):
        pf = ReadaheadPrefetcher(base_window=8, min_window=2)
        ops = FakeOps(hit=0.0)
        pf.on_major_fault(100, ops)
        assert ops.requests == [101]  # floor window of 2 => 1 extra page

    def test_no_prefetcher_is_silent(self):
        ops = FakeOps()
        NoPrefetcher().on_major_fault(5, ops)
        assert ops.requests == []


class TestMajorityDelta:
    def test_empty(self):
        assert majority_delta([]) is None

    def test_clear_majority(self):
        assert majority_delta([1, 1, 2, 1, 1]) == 1

    def test_no_majority(self):
        assert majority_delta([1, 2, 3, 4]) is None

    def test_exact_half_is_not_majority(self):
        assert majority_delta([1, 1, 2, 2]) is None


class TestTrend:
    def test_detects_forward_stride(self):
        pf = TrendPrefetcher(history=16, max_window=4)
        ops = FakeOps()
        for vpn in range(100, 110):
            pf.on_major_fault(vpn, ops)
        assert 110 in ops.requests or 109 + 1 in ops.requests

    def test_detects_strided_pattern(self):
        pf = TrendPrefetcher(history=16, max_window=4)
        ops = FakeOps()
        for vpn in range(0, 64, 4):
            pf.on_major_fault(vpn, ops)
        # Last fault at 60 with stride 4 -> prefetch 64, 68, 72.
        assert ops.requests[-3:] == [64, 68, 72]

    def test_detects_backward_stride(self):
        pf = TrendPrefetcher(history=16, max_window=2)
        ops = FakeOps()
        for vpn in range(1000, 900, -2):
            pf.on_major_fault(vpn, ops)
        assert ops.requests[-1] == 900  # 902 - 2

    def test_silent_on_random_access(self):
        pf = TrendPrefetcher(history=16, max_window=4)
        ops = FakeOps()
        import random
        rng = random.Random(7)
        for _ in range(50):
            pf.on_major_fault(rng.randrange(1 << 20), ops)
        assert len(ops.requests) <= 2  # accidental ties only

    def test_needs_min_samples(self):
        pf = TrendPrefetcher()
        ops = FakeOps()
        for vpn in [1, 2, 3]:
            pf.on_major_fault(vpn, ops)
        assert ops.requests == []


class TestHitTracker:
    def make(self):
        clock = Clock()
        pt = PageTable()
        tracker = PteHitTracker(clock, pt, LatencyModel())
        return clock, pt, tracker

    def test_accessed_counts_as_hit(self):
        clock, pt, tracker = self.make()
        pt.set(5, pte_mod.make_local(1, accessed=True))
        tracker.note_installed(5)
        tracker.scan()
        assert tracker.hits == 1
        assert tracker.misses == 0

    def test_young_unaccessed_not_judged(self):
        clock, pt, tracker = self.make()
        pt.set(5, pte_mod.make_local(1))
        tracker.note_installed(5)
        tracker.scan()
        assert tracker.hits == tracker.misses == 0

    def test_matured_unaccessed_is_miss(self):
        clock, pt, tracker = self.make()
        pt.set(5, pte_mod.make_local(1))
        tracker.note_installed(5)
        clock.advance(PteHitTracker.GRACE_US + 1)
        tracker.scan()
        assert tracker.misses == 1

    def test_hit_ratio_moves_with_evidence(self):
        clock, pt, tracker = self.make()
        start = tracker.hit_ratio()
        for vpn in range(20):
            pt.set(vpn, pte_mod.make_local(1))
            tracker.note_installed(vpn)
        clock.advance(PteHitTracker.GRACE_US + 1)
        tracker.scan(budget=100)
        assert tracker.hit_ratio() < start * 0.3

    def test_scan_charges_time(self):
        clock, pt, tracker = self.make()
        pt.set(1, pte_mod.make_local(1, accessed=True))
        tracker.note_installed(1)
        before = clock.now
        tracker.scan()
        assert clock.now > before
