"""Unit + property tests for the allocator bitmap."""

import pytest
from hypothesis import given, strategies as st

from repro.alloc.bitmap import Bitmap


class TestBasics:
    def test_set_test_clear(self):
        b = Bitmap(8)
        assert not b.test(3)
        b.set(3)
        assert b.test(3)
        b.clear(3)
        assert not b.test(3)

    def test_bounds(self):
        b = Bitmap(8)
        with pytest.raises(IndexError):
            b.set(8)
        with pytest.raises(IndexError):
            b.test(-1)

    def test_range_ops(self):
        b = Bitmap(16)
        b.set_range(4, 8)
        assert b.popcount() == 8
        assert not b.test(3)
        assert b.test(4)
        assert b.test(11)
        assert not b.test(12)
        b.clear_range(6, 2)
        assert b.popcount() == 6

    def test_zero_count_range(self):
        b = Bitmap(8)
        b.set_range(0, 0)
        assert b.popcount() == 0

    def test_any_all(self):
        b = Bitmap(4)
        assert not b.any()
        b.set_range(0, 4)
        assert b.all()

    def test_find_first_clear(self):
        b = Bitmap(4)
        assert b.find_first_clear() == 0
        b.set(0)
        b.set(1)
        assert b.find_first_clear() == 2
        b.set_range(0, 4)
        assert b.find_first_clear() == -1


class TestRuns:
    def test_empty(self):
        assert list(Bitmap(16).runs()) == []

    def test_single_run(self):
        b = Bitmap(16)
        b.set_range(2, 5)
        assert list(b.runs()) == [(2, 5)]

    def test_multiple_runs(self):
        b = Bitmap(32)
        b.set(0)
        b.set_range(4, 3)
        b.set_range(30, 2)
        assert list(b.runs()) == [(0, 1), (4, 3), (30, 2)]

    def test_full(self):
        b = Bitmap(8)
        b.set_range(0, 8)
        assert list(b.runs()) == [(0, 8)]

    def test_as_ranges_scaling(self):
        b = Bitmap(256)
        b.set_range(2, 4)
        assert b.as_ranges(16) == [(32, 64)]


@given(st.sets(st.integers(min_value=0, max_value=255), max_size=64))
def test_runs_reconstruct_set_bits_property(bits):
    b = Bitmap(256)
    for bit in bits:
        b.set(bit)
    reconstructed = set()
    last_end = -1
    for start, count in b.runs():
        assert count > 0
        assert start > last_end  # runs ordered, maximal, disjoint
        last_end = start + count - 1
        reconstructed.update(range(start, start + count))
    assert reconstructed == bits


@given(st.lists(st.tuples(st.integers(0, 250), st.integers(1, 6),
                          st.booleans()), max_size=40))
def test_range_ops_match_shadow_property(ops):
    b = Bitmap(256)
    shadow = set()
    for start, count, is_set in ops:
        count = min(count, 256 - start)
        if is_set:
            b.set_range(start, count)
            shadow.update(range(start, start + count))
        else:
            b.clear_range(start, count)
            shadow.difference_update(range(start, start + count))
    assert b.popcount() == len(shadow)
    for bit in range(256):
        assert b.test(bit) == (bit in shadow)
