"""Unit + integration tests for multi-node remote memory (§5.1 extension):
sharding, replication with failover, parity striping with reconstruction,
and full DiLOS runs on clustered backends under failure injection."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import OutOfMemoryError
from repro.common.units import MIB, PAGE_SIZE
from repro.core import DilosConfig, DilosSystem
from repro.mem.cluster import ParityStripedMemory, ReplicatedMemory, ShardedMemory
from repro.mem.remote import MemoryNode, NodeFailedError


def make_nodes(n, capacity=4 * MIB):
    return [MemoryNode(capacity, name=f"m{i}") for i in range(n)]


class TestSharded:
    def test_requires_equal_nodes(self):
        with pytest.raises(ValueError):
            ShardedMemory([MemoryNode(1 * MIB)])
        with pytest.raises(ValueError):
            ShardedMemory([MemoryNode(1 * MIB), MemoryNode(2 * MIB)])

    def test_capacity_aggregates(self):
        cluster = ShardedMemory(make_nodes(3))
        assert cluster.capacity == 12 * MIB
        assert cluster.total_slots == 3 * (4 * MIB // PAGE_SIZE)

    def test_roundtrip_within_page(self):
        cluster = ShardedMemory(make_nodes(2))
        slot = cluster.alloc_slot()
        off = cluster.slot_offset(slot)
        cluster.write_bytes(off + 100, b"sharded!")
        assert cluster.read_bytes(off + 100, 8) == b"sharded!"

    def test_cross_page_io_split(self):
        cluster = ShardedMemory(make_nodes(2))
        cluster.write_bytes(PAGE_SIZE - 3, b"ABCDEF")
        assert cluster.read_bytes(PAGE_SIZE - 3, 6) == b"ABCDEF"

    def test_slots_spread_over_nodes(self):
        nodes = make_nodes(4)
        cluster = ShardedMemory(nodes)
        for _ in range(64):
            cluster.alloc_slot()
        used = [n.total_slots - n.free_slots for n in nodes]
        assert all(u == 16 for u in used)

    def test_exhaustion(self):
        cluster = ShardedMemory(make_nodes(2, capacity=2 * PAGE_SIZE))
        for _ in range(4):
            cluster.alloc_slot()
        with pytest.raises(OutOfMemoryError):
            cluster.alloc_slot()

    def test_free_slot_roundtrip(self):
        cluster = ShardedMemory(make_nodes(2))
        slot = cluster.alloc_slot()
        before = cluster.free_slots
        cluster.free_slot(slot)
        assert cluster.free_slots == before + 1


class TestReplicated:
    def test_writes_fan_out(self):
        nodes = make_nodes(3)
        cluster = ReplicatedMemory(nodes)
        cluster.write_bytes(64, b"copy-me")
        for node in nodes:
            assert node.read_bytes(64, 7) == b"copy-me"

    def test_failover_read(self):
        nodes = make_nodes(2)
        cluster = ReplicatedMemory(nodes)
        cluster.write_bytes(0, b"durable")
        nodes[0].fail()
        assert cluster.read_bytes(0, 7) == b"durable"
        assert cluster.counters.get("failover_reads") == 1

    def test_all_dead_raises(self):
        nodes = make_nodes(2)
        cluster = ReplicatedMemory(nodes)
        for node in nodes:
            node.fail()
        with pytest.raises(NodeFailedError):
            cluster.read_bytes(0, 1)
        with pytest.raises(NodeFailedError):
            cluster.write_bytes(0, b"x")

    def test_write_survives_dead_mirror(self):
        nodes = make_nodes(3)
        cluster = ReplicatedMemory(nodes)
        nodes[2].fail()
        cluster.write_bytes(0, b"two-copies")
        assert cluster.counters.get("writes_skipped_dead_replica") == 1
        assert cluster.read_bytes(0, 10) == b"two-copies"


class TestParityStriped:
    def test_needs_three_nodes(self):
        with pytest.raises(ValueError):
            ParityStripedMemory(make_nodes(2))

    def test_roundtrip_healthy(self):
        cluster = ParityStripedMemory(make_nodes(3))
        cluster.write_bytes(0, b"raid5")
        assert cluster.read_bytes(0, 5) == b"raid5"

    def test_reconstruction_after_data_node_failure(self):
        nodes = make_nodes(4)
        cluster = ParityStripedMemory(nodes)
        payloads = {}
        for page in range(12):
            data = bytes([(page * 37 + j) % 256 for j in range(64)])
            cluster.write_bytes(page * PAGE_SIZE, data)
            payloads[page] = data
        nodes[1].fail()  # one data node dies
        for page, data in payloads.items():
            assert cluster.read_bytes(page * PAGE_SIZE, 64) == data, page
        assert cluster.counters.get("degraded_reads") > 0
        assert cluster.counters.get("reconstruction_bytes") > 0

    def test_degraded_write_recoverable(self):
        nodes = make_nodes(3)
        cluster = ParityStripedMemory(nodes)
        nodes[0].fail()
        # Page 0 routes to data node 0 (global page 0 % k=2 == 0).
        cluster.write_bytes(0, b"ghost-write")
        assert cluster.counters.get("degraded_writes") == 1
        assert cluster.read_bytes(0, 11) == b"ghost-write"

    def test_parity_node_failure_is_tolerated(self):
        nodes = make_nodes(3)
        cluster = ParityStripedMemory(nodes)
        nodes[-1].fail()  # parity down
        cluster.write_bytes(0, b"no-parity")
        assert cluster.read_bytes(0, 9) == b"no-parity"
        assert cluster.counters.get("parity_writes_skipped") == 1


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 31),
       st.integers(min_value=3, max_value=5),
       st.integers(min_value=0, max_value=4))
def test_parity_reconstruction_property(seed, n_nodes, fail_index):
    """Any single data-node failure is fully recoverable."""
    rng = random.Random(seed)
    nodes = make_nodes(n_nodes, capacity=64 * PAGE_SIZE)
    cluster = ParityStripedMemory(nodes)
    shadow = {}
    for _ in range(30):
        page = rng.randrange(32)
        data = bytes(rng.randrange(256) for _ in range(32))
        cluster.write_bytes(page * PAGE_SIZE, data)
        shadow[page] = data
    victim = fail_index % (n_nodes - 1)
    nodes[victim].fail()
    for page, data in shadow.items():
        assert cluster.read_bytes(page * PAGE_SIZE, 32) == data


class TestDilosOnClusters:
    def run_workload(self, backend):
        system = DilosSystem(DilosConfig(local_mem_bytes=1 * MIB,
                                         remote_mem_bytes=4 * MIB),
                             memory_backend=backend)
        region = system.mmap(4 * MIB, name="ws")
        pages = region.size // PAGE_SIZE
        for i in range(pages):
            system.memory.write(region.base + i * PAGE_SIZE,
                                bytes([(i * 7) % 251]) * 48)
        return system, region, pages

    def verify(self, system, region, pages):
        for i in range(pages):
            got = system.memory.read(region.base + i * PAGE_SIZE, 48)
            assert got == bytes([(i * 7) % 251]) * 48, f"page {i}"

    def test_dilos_on_sharded_cluster(self):
        backend = ShardedMemory(make_nodes(4))
        system, region, pages = self.run_workload(backend)
        self.verify(system, region, pages)
        # Traffic actually spread over multiple nodes.
        touched = sum(1 for n in backend.nodes
                      if n.total_slots - n.free_slots > 0)
        assert touched >= 3

    def test_dilos_survives_primary_failure_with_replication(self):
        nodes = make_nodes(2, capacity=8 * MIB)
        backend = ReplicatedMemory(nodes)
        system, region, pages = self.run_workload(backend)
        system.clock.advance(5000)  # everything cleaned to both replicas
        nodes[0].fail()
        self.verify(system, region, pages)
        assert backend.counters.get("failover_reads") > 0

    def test_dilos_survives_data_node_loss_with_parity(self):
        nodes = make_nodes(4, capacity=4 * MIB)
        backend = ParityStripedMemory(nodes)
        system, region, pages = self.run_workload(backend)
        system.clock.advance(5000)
        nodes[2].fail()
        self.verify(system, region, pages)
        assert backend.counters.get("degraded_reads") > 0

    def test_unprotected_node_loss_is_fatal(self):
        """Without redundancy a dead node loses data — the §5.1 motivation."""
        nodes = make_nodes(2, capacity=8 * MIB)
        backend = ShardedMemory(nodes)
        system, region, pages = self.run_workload(backend)
        system.clock.advance(5000)
        nodes[0].fail()
        with pytest.raises(NodeFailedError):
            self.verify(system, region, pages)
