"""Tests for the global pooled allocator (repro.mem.pool)."""

import pytest

from repro.common.errors import OutOfMemoryError
from repro.common.units import MIB, PAGE_SIZE
from repro.core.spec import make_backend
from repro.mem.pool import (
    PlacementPolicy,
    PooledMemory,
    make_placement,
    placement_kinds,
    register_placement,
)
from repro.mem.remote import MemoryNode


def pool_of(nodes=3, slots=8, policy="load"):
    return PooledMemory([MemoryNode(slots * PAGE_SIZE) for _ in range(nodes)],
                        policy=policy)


def node_index(pool, slot):
    return slot // pool.node_slots


class TestPlacementRegistry:
    def test_kinds(self):
        assert set(placement_kinds()) == {"locality", "load", "pack",
                                          "interleave"}

    def test_make_by_name_and_passthrough(self):
        policy = make_placement("locality")
        assert policy.prefers_home
        assert make_placement(policy) is policy
        assert make_placement(None).name == "load"

    def test_unknown_raises_with_choices(self):
        with pytest.raises(ValueError, match="unknown placement policy"):
            make_placement("random")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_placement("load")(PlacementPolicy)


class TestPolicies:
    def test_locality_prefers_home(self):
        pool = pool_of(policy="locality")
        slots = [pool.alloc_for(1) for _ in range(8)]
        assert all(node_index(pool, s) == 1 for s in slots)
        assert pool.registry.snapshot().counters["pool.spills"] == 0

    def test_locality_spills_to_nearest(self):
        pool = pool_of(nodes=3, slots=2, policy="locality")
        for _ in range(2):
            pool.alloc_for(1)
        spilled = pool.alloc_for(1)
        # Home node 1 is full; |0-1| == |2-1| ties break to the lower
        # index.
        assert node_index(pool, spilled) == 0
        assert pool.registry.snapshot().counters["pool.spills"] == 1

    def test_load_balances(self):
        pool = pool_of(policy="load")
        slots = [pool.alloc_for(0) for _ in range(6)]
        assert sorted(node_index(pool, s) for s in slots) == [0, 0, 1, 1,
                                                             2, 2]
        # Off-home placement is the policy's job, not a spill.
        assert pool.registry.snapshot().counters["pool.spills"] == 0

    def test_pack_first_fit(self):
        pool = pool_of(nodes=3, slots=2, policy="pack")
        nodes = [node_index(pool, pool.alloc_for(2)) for _ in range(5)]
        assert nodes == [0, 0, 1, 1, 2]

    def test_interleave_rotates(self):
        pool = pool_of(policy="interleave")
        nodes = [node_index(pool, pool.alloc_for(0)) for _ in range(6)]
        assert nodes == [0, 1, 2, 0, 1, 2]

    def test_exhaustion_raises(self):
        for policy in placement_kinds():
            pool = pool_of(nodes=2, slots=2, policy=policy)
            for _ in range(4):
                pool.alloc_for(0)
            with pytest.raises(OutOfMemoryError):
                pool.alloc_for(0)


class TestSlotEncoding:
    def test_contiguous_per_node(self):
        pool = pool_of(nodes=2, slots=4, policy="pack")
        slots = [pool.alloc_for(0) for _ in range(8)]
        assert slots == list(range(8))
        assert [pool.node_of(pool.slot_offset(s)) for s in slots] == \
            [0, 0, 0, 0, 1, 1, 1, 1]

    def test_node_of_bounds(self):
        pool = pool_of(nodes=2, slots=4)
        with pytest.raises(ValueError):
            pool.node_of(8 * PAGE_SIZE)

    def test_free_slot_returns_to_owner(self):
        pool = pool_of(nodes=2, slots=2, policy="pack")
        slot = pool.alloc_for(0)
        assert pool.nodes[0].free_slots == 1
        pool.free_slot(slot)
        assert pool.nodes[0].free_slots == 2
        assert pool.registry.snapshot().counters["pool.free"] == 1


class TestDataPath:
    def test_read_write_round_trip(self):
        pool = pool_of(nodes=2, slots=4)
        slot = pool.alloc_slot()
        offset = pool.slot_offset(slot)
        pool.write_bytes(offset, b"u" * PAGE_SIZE)
        assert pool.read_bytes(offset, PAGE_SIZE) == b"u" * PAGE_SIZE

    def test_cross_node_extent(self):
        """An extent spanning the node boundary splits transparently."""
        pool = pool_of(nodes=2, slots=2, policy="pack")
        for _ in range(4):
            pool.alloc_slot()
        boundary = 2 * PAGE_SIZE  # last page of node 0 starts one before
        data = bytes(range(256)) * 32  # 2 pages
        pool.write_bytes(boundary - PAGE_SIZE, data)
        assert pool.read_bytes(boundary - PAGE_SIZE, 2 * PAGE_SIZE) == data

    def test_capacity_sums(self):
        pool = pool_of(nodes=3, slots=8)
        assert pool.capacity == 3 * 8 * PAGE_SIZE
        assert pool.total_slots == 24
        assert pool.free_slots == 24

    def test_resilver_unsupported(self):
        assert pool_of().resilver_page(0, 0) == -1


class TestClients:
    def test_client_carries_home(self):
        pool = pool_of(policy="locality")
        client = pool.client("t0", home=2)
        slot = client.alloc_slot()
        assert node_index(pool, slot) == 2
        offset = client.slot_offset(slot)
        client.write_bytes(offset, b"z" * 16)
        assert client.read_bytes(offset, 16) == b"z" * 16
        assert client.node_of(offset) == 2
        client.free_slot(slot)
        assert pool.free_slots == pool.total_slots

    def test_client_cached_and_home_pinned(self):
        pool = pool_of()
        first = pool.client("t0", home=1)
        assert pool.client("t0", home=1) is first
        with pytest.raises(ValueError, match="already registered"):
            pool.client("t0", home=2)

    def test_bad_home(self):
        with pytest.raises(ValueError, match="no memory node"):
            pool_of(nodes=2).client("t0", home=2)

    def test_clients_gauge(self):
        pool = pool_of()
        pool.client("a", 0)
        pool.client("b", 1)
        assert pool.registry.snapshot().counters["pool.clients"] == 2.0


class TestTenantTeardown:
    """Regression: a departing homed client must return ALL its slots.

    Before the fix the pool had no record of which client held which
    slot, so a tenant that exited without freeing leaked its pages
    forever — and because homed allocations concentrate on the policy's
    favored nodes, ``pool.stranded_slots`` drifted upward with every
    tenant generation until the home node wedged.
    """

    def test_release_client_returns_all_slots(self):
        pool = pool_of(nodes=2, slots=8, policy="locality")
        client = pool.client("t0", home=0)
        slots = [client.alloc_slot() for _ in range(5)]
        client.free_slot(slots[0])  # tenant freed one itself
        freed = pool.release_client("t0")
        assert freed == 4
        assert pool.free_slots == pool.total_slots
        snap = pool.registry.snapshot()
        assert snap.counters["pool.reclaimed_slots"] == 4
        assert snap.counters["pool.free"] == 5

    def test_stranded_slots_do_not_drift_across_churn(self):
        pool = pool_of(nodes=2, slots=8, policy="locality")
        stranded = []
        for gen in range(6):
            name = f"tenant{gen}"
            client = pool.client(name, home=0)
            for _ in range(4):
                client.alloc_slot()
            pool.release_client(name)
            stranded.append(pool.stranded_slots)
        # Red case: generation g left 4*g slots leaked on node 0, so
        # stranded_slots climbed 4, 8, ... and gen 2+ spilled or OOMed.
        assert stranded == [0] * 6
        assert pool.free_slots == pool.total_slots
        assert pool.registry.snapshot().counters["pool.clients"] == 0.0

    def test_release_unknown_client_raises(self):
        with pytest.raises(KeyError, match="ghost"):
            pool_of().release_client("ghost")

    def test_release_allows_name_and_home_reuse(self):
        pool = pool_of()
        pool.client("t0", home=0)
        pool.release_client("t0")
        assert pool.client("t0", home=1).home == 1

    def test_anonymous_allocations_unaffected(self):
        pool = pool_of(nodes=2, slots=4)
        anon = pool.alloc_slot()
        pool.client("t0", home=0).alloc_slot()
        pool.release_client("t0")
        assert pool.free_slots == pool.total_slots - 1
        pool.free_slot(anon)
        assert pool.free_slots == pool.total_slots


class TestPlacementMetrics:
    def test_stranding_under_locality(self):
        pool = pool_of(nodes=2, slots=8, policy="locality")
        for _ in range(8):
            pool.alloc_for(0)
        # Node 0 exhausted, node 1 idle: its free space is stranded.
        assert pool.stranded_slots == 8
        assert pool.frag_imbalance == pytest.approx(1.0)

    def test_balanced_pool_strands_nothing(self):
        pool = pool_of(nodes=2, slots=8, policy="load")
        for _ in range(8):
            pool.alloc_for(0)
        assert pool.stranded_slots == 0
        assert pool.frag_imbalance == 0.0

    def test_metric_names(self):
        pool = pool_of(nodes=2)
        snap = pool.registry.snapshot()
        for name in ("pool.alloc", "pool.free", "pool.spills",
                     "pool.stranded_slots", "pool.frag_imbalance",
                     "pool.clients", "pool.n0.free_slots",
                     "pool.n1.free_slots"):
            assert name in snap.counters


class TestBackendSpec:
    def test_pool_spec_builds(self):
        pool = make_backend("pool:4/locality", 16 * MIB)
        assert isinstance(pool, PooledMemory)
        assert len(pool.nodes) == 4
        assert pool.policy.name == "locality"
        assert pool.capacity >= 16 * MIB

    def test_default_policy_is_load(self):
        assert make_backend("pool:2", 8 * MIB).policy.name == "load"
        assert make_backend("pool", 8 * MIB).policy.name == "load"

    def test_bad_specs(self):
        for bad in ("pool:x", "pool:0", "pool:2/random"):
            with pytest.raises(ValueError):
                make_backend(bad, 8 * MIB)

    def test_equal_capacity_enforced(self):
        with pytest.raises(ValueError):
            PooledMemory([MemoryNode(2 * PAGE_SIZE),
                          MemoryNode(4 * PAGE_SIZE)])
