"""Wire ``scripts/net_chaos_smoke.py`` into the suite: the documented
degraded-mode reproduction (all three kernels on a >= 1% drop + corrupt
wire: zero data loss, net.retry > 0, same-seed determinism) must pass
end to end, exactly as a user would run it."""

import sys
from pathlib import Path

SCRIPTS = Path(__file__).resolve().parent.parent / "scripts"


def test_net_chaos_smoke():
    sys.path.insert(0, str(SCRIPTS))
    try:
        import net_chaos_smoke
    finally:
        sys.path.remove(str(SCRIPTS))
    assert net_chaos_smoke.main() == 0
