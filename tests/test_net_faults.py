"""Deterministic unit tests for the reliable transport.

With a scripted fault schedule the exact simulated-clock timestamp of
every retry follows from the latency model and the retry policy::

    post_0   = 0 + rdma_post_overhead
    when_k   = post_k + size * per_byte + base          (wire idle)
    detect_k = post_k + timeout_us        (lost attempt)
             = when_k                     (corrupt attempt: checksum NAK)
    post_k+1 = detect_k + backoff(k+1) + rdma_post_overhead

These tests pin those timestamps, the backoff cap, failover, retry-budget
exhaustion, determinism across runs, and the ``MemoryNode.fail()``
in-flight race regression.
"""

import pytest

from repro.common.clock import Clock
from repro.common.units import KIB, MIB, PAGE_SIZE
from repro.core import DilosConfig, DilosSystem
from repro.mem.remote import MemoryNode, NodeFailedError
from repro.net.faults import FaultPlan, RetryPolicy, TransportError, checksum
from repro.net.latency import LatencyModel
from repro.net.qp import NetStats, QueuePair
from repro.net.reliable import ReliableQP
from repro.obs.registry import MetricsRegistry


def build_transport(script=None, plan=None, policy=None, siblings=2,
                    capacity=1024 * KIB):
    clock = Clock()
    model = LatencyModel()
    node = MemoryNode(capacity_bytes=capacity)
    stats = NetStats()
    registry = MetricsRegistry()
    if plan is None and script is not None:
        plan = FaultPlan(script=script)
    qps = [QueuePair(f"qp{i}" if i else "qp0", clock, model, node, stats)
           for i in range(siblings)]
    rqp = ReliableQP("rel", clock, model, node, qps, plan=plan,
                     policy=policy, registry=registry)
    return clock, model, node, stats, registry, rqp


class TestCleanPath:
    def test_no_faults_matches_raw_qp_timing(self):
        clock, model, node, stats, registry, rqp = build_transport(script=[])
        completion = rqp.post_read(0, 4096)
        expected = model.rdma_post_overhead + model.rdma_read_latency(4096)
        assert completion.time == pytest.approx(expected)
        assert completion.retries == 0
        assert registry.value("net.ops") == 1
        assert registry.value("net.retry") == 0

    def test_read_round_trips_bytes(self):
        clock, model, node, stats, registry, rqp = build_transport(script=[])
        node.write_bytes(128, b"\xabcd" * 64)
        completion = rqp.post_read(128, 256)
        assert completion.data == node.read_bytes(128, 256)

    def test_reliability_metrics_preregistered_at_zero(self):
        _clock, _model, _node, _stats, registry, _rqp = build_transport(
            script=[])
        for key in ("net.ops", "net.retry", "net.timeout",
                    "net.corrupt_detected", "net.failover", "net.giveup"):
            assert registry.value(key) == 0


class TestRetryTimestamps:
    def test_single_drop_retry_exact_timestamp(self):
        policy = RetryPolicy(timeout_us=50.0, backoff_us=10.0,
                             backoff_cap_us=40.0, max_attempts=6,
                             failover_after=99)
        clock, model, node, stats, registry, rqp = build_transport(
            script=["drop", None], policy=policy)
        completion = rqp.post_read(0, 4096)
        post0 = model.rdma_post_overhead
        detect0 = post0 + 50.0
        post1 = detect0 + 10.0 + model.rdma_post_overhead
        assert completion.time == pytest.approx(
            post1 + model.rdma_read_latency(4096))
        assert completion.retries == 1
        assert registry.value("net.retry") == 1
        assert registry.value("net.timeout") == 1
        assert registry.value("net.corrupt_detected") == 0

    def test_corrupt_detected_at_completion_not_timeout(self):
        policy = RetryPolicy(timeout_us=50.0, backoff_us=10.0,
                             backoff_cap_us=40.0, max_attempts=6,
                             failover_after=99)
        clock, model, node, stats, registry, rqp = build_transport(
            script=["corrupt", None], policy=policy)
        node.write_bytes(0, b"\x5a" * 4096)
        completion = rqp.post_read(0, 4096)
        post0 = model.rdma_post_overhead
        when0 = post0 + model.rdma_read_latency(4096)  # checksum NAK here
        post1 = when0 + 10.0 + model.rdma_post_overhead
        assert completion.time == pytest.approx(
            post1 + model.rdma_read_latency(4096))
        assert completion.data == b"\x5a" * 4096  # retransmission is clean
        assert registry.value("net.corrupt_detected") == 1
        assert registry.value("net.timeout") == 0

    def test_backoff_doubles_then_caps(self):
        policy = RetryPolicy(timeout_us=50.0, backoff_us=10.0,
                             backoff_cap_us=40.0, max_attempts=6,
                             failover_after=99)
        clock, model, node, stats, registry, rqp = build_transport(
            script=["drop"] * 5 + [None], policy=policy)
        rqp.post_read(0, 4096)
        # stats.timeline records each attempt's completion time; the
        # attempt-to-attempt spacing is timeout + backoff + post overhead.
        times = [t for t, _size, _d in stats.timeline]
        deltas = [b - a for a, b in zip(times, times[1:])]
        expected_backoffs = [10.0, 20.0, 40.0, 40.0, 40.0]  # capped at 40
        assert deltas == pytest.approx(
            [50.0 + b + model.rdma_post_overhead for b in expected_backoffs])
        assert registry.value("net.retry") == 5

    def test_policy_backoff_formula(self):
        policy = RetryPolicy(backoff_us=10.0, backoff_cap_us=200.0)
        assert [policy.backoff(k) for k in range(1, 7)] == [
            10.0, 20.0, 40.0, 80.0, 160.0, 200.0]

    def test_delay_within_timeout_completes_late_without_retry(self):
        policy = RetryPolicy(timeout_us=50.0)
        clock, model, node, stats, registry, rqp = build_transport(
            script=[("delay", 20.0)], policy=policy)
        completion = rqp.post_read(0, 4096)
        base = model.rdma_post_overhead + model.rdma_read_latency(4096)
        assert completion.time == pytest.approx(base + 20.0)
        assert completion.retries == 0
        assert registry.value("net.retry") == 0

    def test_delay_beyond_timeout_is_treated_as_lost(self):
        policy = RetryPolicy(timeout_us=50.0, backoff_us=10.0,
                             backoff_cap_us=40.0, max_attempts=6,
                             failover_after=99)
        clock, model, node, stats, registry, rqp = build_transport(
            script=[("delay", 500.0), None], policy=policy)
        completion = rqp.post_read(0, 4096)
        post0 = model.rdma_post_overhead
        post1 = post0 + 50.0 + 10.0 + model.rdma_post_overhead
        assert completion.time == pytest.approx(
            post1 + model.rdma_read_latency(4096))
        assert registry.value("net.timeout") == 1


class TestFailoverAndExhaustion:
    def test_failover_moves_traffic_to_sibling(self):
        policy = RetryPolicy(timeout_us=50.0, backoff_us=10.0,
                             max_attempts=6, failover_after=2)
        clock, model, node, stats, registry, rqp = build_transport(
            script=["drop", "drop", None], policy=policy)
        primary, alt = rqp._qps
        completion = rqp.post_read(0, 4096)
        assert completion.retries == 2
        assert registry.value("net.failover") == 1
        assert primary.posted == 2 and alt.posted == 1
        assert rqp.active_qp is alt  # failover is sticky

    def test_stalled_primary_recovers_via_sibling(self):
        plan = FaultPlan()
        plan.stall("qp0", 0.0, 100_000.0)  # primary wedged for 100 ms
        policy = RetryPolicy(timeout_us=50.0, backoff_us=10.0,
                             max_attempts=8, failover_after=3)
        clock, model, node, stats, registry, rqp = build_transport(
            plan=plan, policy=policy)
        node.write_bytes(0, b"\x11" * 4096)
        completion = rqp.post_read(0, 4096)
        assert completion.data == b"\x11" * 4096
        assert registry.value("net.failover") == 1
        assert plan.injected.get("stall", 0) == 3

    def test_exhaustion_raises_transport_error_and_charges_clock(self):
        policy = RetryPolicy(timeout_us=50.0, backoff_us=10.0,
                             backoff_cap_us=40.0, max_attempts=3,
                             failover_after=99)
        clock, model, node, stats, registry, rqp = build_transport(
            script=["drop"] * 3, policy=policy)
        with pytest.raises(TransportError):
            rqp.post_read(0, 4096)
        # The clock sits at the last attempt's timeout detection.
        post0 = model.rdma_post_overhead
        post1 = post0 + 50.0 + 10.0 + model.rdma_post_overhead
        post2 = post1 + 50.0 + 20.0 + model.rdma_post_overhead
        assert clock.now == pytest.approx(post2 + 50.0)
        assert registry.value("net.giveup") == 1
        assert registry.value("net.retry") == 2  # retries, not attempts

    def test_transport_error_is_a_node_failed_error(self):
        assert issubclass(TransportError, NodeFailedError)

    def test_failed_write_never_lands_remotely(self):
        policy = RetryPolicy(timeout_us=50.0, max_attempts=2,
                             failover_after=99)
        clock, model, node, stats, registry, rqp = build_transport(
            script=["drop", "drop"], policy=policy)
        with pytest.raises(TransportError):
            rqp.post_write(256, b"\xff" * 64)
        assert node.read_bytes(256, 64) == b"\x00" * 64


class TestLinkFlap:
    def test_flap_window_times_out_then_recovers(self):
        plan = FaultPlan()
        plan.flap(0.0, 30.0)  # link down for the first 30 us
        policy = RetryPolicy(timeout_us=50.0, backoff_us=10.0,
                             failover_after=99)
        clock, model, node, stats, registry, rqp = build_transport(
            plan=plan, policy=policy)
        completion = rqp.post_read(0, 4096)
        # Attempt 0 posts inside the window -> timeout at 50.05; retry 1
        # posts at 60.10, after the link is back.
        post0 = model.rdma_post_overhead
        post1 = post0 + 50.0 + 10.0 + model.rdma_post_overhead
        assert completion.time == pytest.approx(
            post1 + model.rdma_read_latency(4096))
        assert plan.injected.get("flap", 0) == 1

    def test_periodic_flap_schedule_is_pure_time_function(self):
        plan = FaultPlan(flap_period_us=1000.0, flap_down_us=100.0)
        assert plan.link_down(50.0)
        assert not plan.link_down(500.0)
        assert plan.link_down(1099.0)
        assert not plan.link_down(1100.0)


class TestDeterminism:
    @staticmethod
    def _run_once():
        plan = FaultPlan(seed=42, drop=0.2, corrupt=0.1, delay=0.1,
                        delay_us=20.0)
        policy = RetryPolicy(timeout_us=50.0, max_attempts=10)
        clock, model, node, stats, registry, rqp = build_transport(
            plan=plan, policy=policy)
        trace = []
        for i in range(60):
            off = (i % 16) * PAGE_SIZE
            if i % 3 == 0:
                rqp.post_write(off, bytes([i % 251]) * 512)
            completion = rqp.post_read(off, 512)
            trace.append((completion.time, completion.retries,
                          checksum(completion.data)))
        metrics = {k: registry.value(k)
                   for k in ("net.ops", "net.retry", "net.timeout",
                             "net.corrupt_detected", "net.failover")}
        return trace, metrics, clock.now

    def test_same_seed_same_timeline_byte_identical(self):
        first = self._run_once()
        second = self._run_once()
        assert first == second
        assert first[1]["net.retry"] > 0  # the plan actually bit


class TestInFlightNodeFailure:
    """Regression: ``MemoryNode.fail()`` racing an in-flight verb must be
    observed by the issuer — never a silent success."""

    def test_raw_qp_wait_raises_when_node_dies_in_flight(self):
        clock = Clock()
        model = LatencyModel()
        node = MemoryNode(capacity_bytes=1024 * KIB)
        qp = QueuePair("race", clock, model, node, NetStats())
        completion = qp.post_read(0, 4096)
        node.fail()  # response still on the wire
        with pytest.raises(NodeFailedError):
            qp.wait(completion)
        assert completion.failed

    def test_raw_qp_callback_suppressed_when_node_dies_in_flight(self):
        clock = Clock()
        model = LatencyModel()
        node = MemoryNode(capacity_bytes=1024 * KIB)
        qp = QueuePair("race", clock, model, node, NetStats())
        fired = []
        completion = qp.post_read(0, 4096, on_complete=fired.append)
        node.fail()
        clock.advance_to(completion.time + 1.0)
        assert fired == []

    def test_completed_verbs_are_not_retroactively_failed(self):
        clock = Clock()
        model = LatencyModel()
        node = MemoryNode(capacity_bytes=1024 * KIB)
        qp = QueuePair("race", clock, model, node, NetStats())
        completion = qp.post_read(0, 4096)
        qp.wait(completion)  # arrives before the crash
        node.fail()
        assert not completion.failed
        qp.wait(completion)  # still fine to re-wait

    def test_reliable_qp_wait_raises_when_node_dies_in_flight(self):
        clock, model, node, stats, registry, rqp = build_transport(script=[])
        completion = rqp.post_read(0, 4096)
        node.fail()
        with pytest.raises(NodeFailedError):
            rqp.wait(completion)

    def test_dilos_fetch_lost_to_node_crash_rolls_back(self):
        """A crash while the demand fetch is on the wire surfaces as
        NodeFailedError and the kernel rolls the page back to REMOTE."""
        system = DilosSystem(DilosConfig(local_mem_bytes=1 * MIB,
                                         remote_mem_bytes=16 * MIB))
        region = system.mmap(4 * MIB, name="race")
        pages = region.size // PAGE_SIZE
        for i in range(pages):  # fault everything in, evicting most of it
            system.memory.write(region.base + i * PAGE_SIZE,
                                bytes([i % 251]) * 32)
        system.clock.advance(5000)  # cleaner drains write-backs
        # Page 0 was evicted long ago; kill the node mid-fetch.
        system.clock.call_after(0.5, system.node.fail)
        with pytest.raises(NodeFailedError):
            system.memory.read(region.base, 32)
        assert system.kernel.registry.value("net.fetch_node_failures") >= 1
        free_before_retry = system.frames.free_frames
        assert free_before_retry > 0  # the rolled-back frame was freed
