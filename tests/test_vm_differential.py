"""Differential test: the coalesced VM fast path vs a naive reference.

:class:`~repro.mem.vm.VirtualMemory` inlines a coalesced TLB-hit loop in
``read``/``write``/``touch``. This suite replays random access sequences —
reads, writes, touches, TLB shootdowns, accessed-bit clears, and page
evictions — through the optimized implementation and through
:class:`NaiveVirtualMemory`, a line-for-line transcription of the seed
per-page loops. Both run over identical page-table/frame/TLB stacks with a
tiny TLB (forcing LRU churn) and a tiny frame pool (forcing real faults
and evictions), and must agree on:

* every byte returned by every read,
* the final contents of every page (resident or evicted),
* fault counts, TLB hit/miss totals, byte counters, and the simulated
  clock — exactly, not approximately.
"""

from __future__ import annotations

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.clock import Clock
from repro.common.stats import Counter
from repro.common.units import PAGE_SHIFT, PAGE_SIZE
from repro.mem import pte as pte_mod
from repro.mem.frames import FramePool
from repro.mem.page_table import PageTable
from repro.mem.tlb import Tlb
from repro.mem.vm import VirtualMemory, _MAX_FAULT_RETRIES

N_PAGES = 16
TLB_CAPACITY = 4
MAX_RESIDENT = 6
COPY_COST = 1.0e-4


class NaiveVirtualMemory:
    """The seed (pre-coalescing) access loops, kept as the reference."""

    def __init__(self, clock, page_table, frames, copy_cost_per_byte):
        self._clock = clock
        self._pt = page_table
        self._frames = frames
        self._copy_cost = copy_cost_per_byte
        self.tlb = Tlb()
        self.counters = Counter()
        self._fault_handler = None

    def attach_kernel(self, handler):
        self._fault_handler = handler

    def _translate(self, vpn, is_write):
        entry = self.tlb.lookup(vpn)
        if entry is not None:
            frame, writable, dirty_set = entry
            if not is_write or dirty_set:
                return frame
            pte = self._pt.get(vpn)
            self._pt.set(vpn, pte_mod.set_dirty(pte))
            self.tlb.mark_dirty_set(vpn)
            return frame
        for _attempt in range(_MAX_FAULT_RETRIES):
            pte = self._pt.get(vpn)
            if pte_mod.is_present(pte):
                frame = pte_mod.frame_of(pte)
                new = pte_mod.set_accessed(pte)
                if is_write:
                    new = pte_mod.set_dirty(new)
                if new != pte:
                    self._pt.set(vpn, new)
                self.tlb.fill(vpn, frame,
                              writable=bool(new & pte_mod.PTE_WRITE),
                              dirty_set=pte_mod.is_dirty(new))
                return frame
            self._fault_handler(vpn << PAGE_SHIFT, is_write)
        raise AssertionError("page not present after retries")

    def _chunks(self, va, size):
        while size > 0:
            vpn = va >> PAGE_SHIFT
            offset = va & (PAGE_SIZE - 1)
            length = min(PAGE_SIZE - offset, size)
            yield vpn, offset, length
            va += length
            size -= length

    def read(self, va, size):
        if size == 0:
            return b""
        parts = []
        for vpn, offset, length in self._chunks(va, size):
            frame = self._translate(vpn, is_write=False)
            parts.append(bytes(self._frames.data(frame)[offset:offset + length]))
        self._clock.advance(size * self._copy_cost)
        self.counters.add("bytes_read", size)
        return b"".join(parts) if len(parts) > 1 else parts[0]

    def write(self, va, data):
        size = len(data)
        if size == 0:
            return
        cursor = 0
        for vpn, offset, length in self._chunks(va, size):
            frame = self._translate(vpn, is_write=True)
            self._frames.data(frame)[offset:offset + length] = \
                data[cursor:cursor + length]
            cursor += length
        self._clock.advance(size * self._copy_cost)
        self.counters.add("bytes_written", size)

    def touch(self, va, size, is_write=False):
        if size <= 0:
            return
        for vpn, _offset, _length in self._chunks(va, size):
            self._translate(vpn, is_write)


class SimplePager:
    """A deterministic demand pager: map on fault, FIFO-evict when full.

    Pages live either in a frame (resident) or in ``backing`` (evicted);
    eviction always writes back, unmaps the PTE, and shoots down the TLB
    entry — the interactions the coalesced path must survive.
    """

    def __init__(self, vm, page_table, frames):
        self._vm = vm
        self._pt = page_table
        self._frames = frames
        self.backing = {}
        self.resident = OrderedDict()  # vpn -> frame, in map order
        self.faults = 0

    def handle_fault(self, va, is_write):
        vpn = va >> PAGE_SHIFT
        self.faults += 1
        if len(self.resident) >= MAX_RESIDENT:
            old_vpn, old_frame = self.resident.popitem(last=False)
            self.evict(old_vpn, old_frame)
        frame = self._frames.alloc()
        data = self.backing.get(vpn)
        if data is not None:
            self._frames.data(frame)[:] = data
        self._pt.set(vpn, pte_mod.make_local(frame, writable=True))
        self.resident[vpn] = frame

    def evict(self, vpn, frame):
        self.backing[vpn] = bytes(self._frames.data(frame))
        self._pt.set(vpn, 0)
        self._vm.tlb.invalidate(vpn)
        self._frames.free(frame)

    def evict_vpn(self, vpn):
        frame = self.resident.pop(vpn, None)
        if frame is not None:
            self.evict(vpn, frame)

    def shootdown(self, vpn):
        """Clear the accessed bit and invalidate the TLB entry, the way
        the hit tracker / clock-hand rotation does."""
        pte = self._pt.get(vpn)
        if pte_mod.is_present(pte):
            self._pt.set(vpn, pte_mod.clear_accessed(pte))
        self._vm.tlb.invalidate(vpn)

    def page_bytes(self, vpn):
        """Current contents of ``vpn``, wherever it lives."""
        frame = self.resident.get(vpn)
        if frame is not None:
            return bytes(self._frames.data(frame))
        return self.backing.get(vpn, bytes(PAGE_SIZE))


def _build(vm_cls):
    clock = Clock()
    pt = PageTable()
    frames = FramePool(MAX_RESIDENT + 2)
    vm = vm_cls(clock, pt, frames, COPY_COST)
    vm.tlb = Tlb(TLB_CAPACITY)
    pager = SimplePager(vm, pt, frames)
    vm.attach_kernel(pager.handle_fault)
    return vm, pager, clock


_SPAN = N_PAGES * PAGE_SIZE

_op = st.one_of(
    st.tuples(st.just("read"),
              st.integers(0, _SPAN - 1),
              st.integers(1, 3 * PAGE_SIZE)),
    st.tuples(st.just("write"),
              st.integers(0, _SPAN - 1),
              st.integers(1, 3 * PAGE_SIZE),
              st.integers(0, 255)),
    st.tuples(st.just("touch"),
              st.integers(0, _SPAN - 1),
              st.integers(1, 4 * PAGE_SIZE),
              st.booleans()),
    st.tuples(st.just("shootdown"), st.integers(0, N_PAGES - 1)),
    st.tuples(st.just("evict"), st.integers(0, N_PAGES - 1)),
)


def _apply(op, vm, pager):
    kind = op[0]
    if kind == "read":
        _, va, size = op
        size = min(size, _SPAN - va)
        return vm.read(va, size)
    if kind == "write":
        _, va, size, fill = op
        size = min(size, _SPAN - va)
        data = bytes((fill + i) & 0xFF for i in range(size))
        vm.write(va, data)
        return None
    if kind == "touch":
        _, va, size, is_write = op
        size = min(size, _SPAN - va)
        vm.touch(va, size, is_write)
        return None
    if kind == "shootdown":
        pager.shootdown(op[1])
        return None
    pager.evict_vpn(op[1])
    return None


@settings(max_examples=60, deadline=None)
@given(st.lists(_op, max_size=50))
def test_optimized_vm_matches_naive_reference(ops):
    fast_vm, fast_pager, fast_clock = _build(VirtualMemory)
    ref_vm, ref_pager, ref_clock = _build(NaiveVirtualMemory)

    for op in ops:
        fast_result = _apply(op, fast_vm, fast_pager)
        ref_result = _apply(op, ref_vm, ref_pager)
        assert fast_result == ref_result, f"read bytes diverged on {op}"

    assert fast_clock.now == ref_clock.now
    assert fast_pager.faults == ref_pager.faults
    assert fast_vm.tlb.hits == ref_vm.tlb.hits
    assert fast_vm.tlb.misses == ref_vm.tlb.misses
    assert list(fast_vm.tlb.entries) == list(ref_vm.tlb.entries)
    assert fast_vm.counters.as_dict() == ref_vm.counters.as_dict()
    for vpn in range(N_PAGES):
        assert fast_pager.page_bytes(vpn) == ref_pager.page_bytes(vpn), (
            f"page {vpn} contents diverged")
        assert fast_vm._pt.get(vpn) == ref_vm._pt.get(vpn), (
            f"PTE {vpn} diverged")
