"""Tests for stop-and-copy migration (§5.2 extension)."""

import random

import pytest

from repro.common.units import MIB, PAGE_SIZE
from repro.core import DilosConfig, DilosSystem
from repro.core.migration import checkpoint, restore
from repro.core.spec import make_backend
from repro.mem.cluster import ReplicatedMemory, ShardedMemory
from repro.mem.remote import MemoryNode


def make_system(local_mib=1, remote_mib=32, **kwargs):
    return DilosSystem(DilosConfig(local_mem_bytes=local_mib * MIB,
                                   remote_mem_bytes=remote_mib * MIB,
                                   **kwargs))


def pattern(i, nbytes=64):
    return bytes((i * 101 + j) % 256 for j in range(nbytes))


def populate(system, mib=4):
    region = system.mmap(mib * MIB, name="app-data")
    pages = region.size // PAGE_SIZE
    for i in range(pages):
        system.memory.write(region.base + i * PAGE_SIZE, pattern(i))
    return region, pages


class TestCheckpoint:
    def test_captures_resident_and_remote_pages(self):
        system = make_system(local_mib=1)
        region, pages = populate(system)  # 4x local: most pages remote
        image = checkpoint(system)
        assert image.page_count == pages
        assert image.image_bytes == pages * PAGE_SIZE
        first_vpn = region.base >> 12
        assert image.pages[first_vpn][:64] == pattern(0)

    def test_downtime_charged(self):
        system = make_system()
        populate(system, mib=2)
        before = system.clock.now
        image = checkpoint(system)
        assert image.downtime_us > 0
        assert system.clock.now == pytest.approx(before + image.downtime_us)

    def test_quiesces_inflight_fetches(self):
        system = make_system(local_mib=1)
        region, pages = populate(system)
        # Kick off a fault whose readahead leaves fetches in flight, then
        # checkpoint immediately.
        system.memory.read(region.base, 8)
        image = checkpoint(system)
        assert image.page_count == pages  # nothing stuck as FETCHING

    def test_untouched_pages_not_captured(self):
        system = make_system()
        system.mmap(1 * MIB, name="lazy")  # never touched
        image = checkpoint(system)
        assert image.page_count == 0


class TestRestore:
    def test_contents_identical_after_restore(self):
        source = make_system(local_mib=1)
        region, pages = populate(source)
        image = checkpoint(source)
        target = restore(image, DilosConfig(local_mem_bytes=1 * MIB,
                                            remote_mem_bytes=32 * MIB))
        for i in range(pages):
            got = target.memory.read(region.base + i * PAGE_SIZE, 64)
            assert got == pattern(i), f"page {i} corrupted by migration"

    def test_restore_starts_cold_and_demand_pages(self):
        source = make_system()
        region, _pages = populate(source, mib=2)
        image = checkpoint(source)
        target = restore(image, DilosConfig(local_mem_bytes=4 * MIB,
                                            remote_mem_bytes=32 * MIB))
        assert target.frames.used_frames == 0  # cold local cache
        target.memory.read(region.base, 8)
        assert target.metrics()["major_faults"] >= 1  # warmup faulting

    def test_restore_to_different_local_size(self):
        source = make_system(local_mib=1)
        region, pages = populate(source)
        image = checkpoint(source)
        target = restore(image, DilosConfig(local_mem_bytes=8 * MIB,
                                            remote_mem_bytes=32 * MIB))
        for i in range(0, pages, 7):
            assert target.memory.read(region.base + i * PAGE_SIZE, 64) == \
                pattern(i)

    def test_restore_onto_replicated_cluster(self):
        """Migrate from a single node onto a fault-tolerant cluster."""
        source = make_system(local_mib=1)
        region, pages = populate(source)
        image = checkpoint(source)
        nodes = [MemoryNode(32 * MIB, name=f"m{i}") for i in range(2)]
        target = restore(image, DilosConfig(local_mem_bytes=1 * MIB,
                                            remote_mem_bytes=32 * MIB),
                         memory_backend=ReplicatedMemory(nodes))
        nodes[0].fail()  # the new primary dies right after migration
        for i in range(0, pages, 11):
            assert target.memory.read(region.base + i * PAGE_SIZE, 64) == \
                pattern(i)

    def test_restore_onto_sharded_cluster(self):
        """Migrate from a single memory node onto a sharded pool: pages
        land remote-first striped across shards, the cache starts cold,
        warmup faults demand-page, and every byte survives."""
        source = make_system(local_mib=1)
        region, pages = populate(source)
        image = checkpoint(source)

        backend = make_backend("sharded:2", 32 * MIB)
        assert isinstance(backend, ShardedMemory)
        target = restore(image, DilosConfig(local_mem_bytes=1 * MIB,
                                            remote_mem_bytes=32 * MIB),
                         memory_backend=backend)

        # Remote-first landing: nothing resident, image striped over both
        # shards (round-robin slot allocation touches every member).
        assert target.frames.used_frames == 0
        assert backend.total_slots - backend.free_slots == pages
        for node in backend.nodes:
            assert node.free_slots < node.total_slots, \
                f"shard {node.name} received no migrated pages"

        # Warmup is real demand paging on the new backend.
        faults_before = target.metrics()["major_faults"]
        assert target.memory.read(region.base, 64) == pattern(0)
        assert target.metrics()["major_faults"] > faults_before

        # Byte-exact contents across the whole image.
        for i in range(pages):
            got = target.memory.read(region.base + i * PAGE_SIZE, 64)
            assert got == pattern(i), f"page {i} corrupted by migration"

    def test_restore_sharded_then_parity_roundtrip(self):
        """A second hop (sharded -> parity) keeps contents intact and the
        parity backend can reconstruct after a member failure."""
        source = make_system(local_mib=1)
        region, pages = populate(source, mib=2)
        first = restore(checkpoint(source),
                        DilosConfig(local_mem_bytes=1 * MIB,
                                    remote_mem_bytes=32 * MIB),
                        memory_backend=make_backend("sharded:2", 32 * MIB))
        parity = make_backend("parity:2+1", 32 * MIB)
        second = restore(checkpoint(first),
                         DilosConfig(local_mem_bytes=1 * MIB,
                                     remote_mem_bytes=32 * MIB),
                         memory_backend=parity)
        parity.data_nodes[0].fail()  # XOR reconstruction path
        for i in range(0, pages, 5):
            assert second.memory.read(region.base + i * PAGE_SIZE, 64) == \
                pattern(i)

    def test_target_can_keep_working(self):
        source = make_system(local_mib=1)
        region, pages = populate(source)
        image = checkpoint(source)
        target = restore(image, DilosConfig(local_mem_bytes=1 * MIB,
                                            remote_mem_bytes=32 * MIB))
        rng = random.Random(3)
        shadow = {i: pattern(i) for i in range(pages)}
        for step in range(500):
            i = rng.randrange(pages)
            va = region.base + i * PAGE_SIZE
            if rng.random() < 0.5:
                new = pattern(step + 10_000)
                target.memory.write(va, new)
                shadow[i] = new
            else:
                assert target.memory.read(va, 64) == shadow[i]

    def test_guided_paging_pages_survive(self):
        """ACTION pages are rebuilt from their vectors at capture."""
        from repro.alloc import Mimalloc, MimallocGuide
        source = make_system(local_mib=1, prefetcher="none",
                             guided_paging=True)
        alloc = Mimalloc(source, arena_bytes=8 * MIB)
        source.kernel.register_allocator_guide(MimallocGuide(alloc))
        rng = random.Random(5)
        vas = [alloc.malloc(128) for _ in range(12_000)]
        live = {}
        for i, va in enumerate(vas):
            source.memory.write(va, pattern(i, 128))
        for i, va in enumerate(vas):
            if rng.random() < 0.7:
                alloc.free(va)
            else:
                live[va] = pattern(i, 128)
        source.clock.advance(5000)  # evict via guided paging
        assert source.kernel.counters.get("pages_evicted") > 0
        image = checkpoint(source)
        target = restore(image, DilosConfig(local_mem_bytes=1 * MIB,
                                            remote_mem_bytes=32 * MIB))
        for va, expect in live.items():
            assert target.memory.read(va, 128) == expect
