"""Unit tests for the compatibility layer (ELF loader model, §5)."""

import pytest

from repro.common.units import MIB
from repro.alloc import Mimalloc
from repro.core import DilosConfig, DilosSystem
from repro.core.loader import ElfLoader, LoadedBinary


@pytest.fixture()
def setup():
    system = DilosSystem(DilosConfig(local_mem_bytes=2 * MIB,
                                     remote_mem_bytes=64 * MIB))
    alloc = Mimalloc(system, arena_bytes=16 * MIB)
    loader = ElfLoader(ddc_malloc=alloc.malloc, ddc_free=alloc.free)
    return system, alloc, loader


def libc_malloc(size):
    raise AssertionError("libc malloc must be patched away")


def libc_free(va):
    raise AssertionError("libc free must be patched away")


class TestPatching:
    def test_malloc_free_rebound_to_ddc(self, setup):
        system, alloc, loader = setup
        binary = loader.load({"malloc": libc_malloc, "free": libc_free,
                              "main": lambda: 0})
        va = binary.call("malloc", 256)  # must NOT hit libc_malloc
        assert alloc.allocation_size(va) == 256
        binary.call("free", va)
        assert alloc.allocation_size(va) is None
        assert loader.patched_symbols == 2

    def test_unrelated_symbols_untouched(self, setup):
        _, _, loader = setup
        marker = object()
        binary = loader.load({"compute": lambda: marker})
        assert binary.call("compute") is marker

    def test_binary_without_malloc(self, setup):
        _, _, loader = setup
        loader.load({"main": lambda: 0})
        assert loader.patched_symbols == 0

    def test_undefined_symbol(self, setup):
        _, _, loader = setup
        binary = loader.load({})
        with pytest.raises(KeyError):
            binary.sym("missing")
        assert not binary.defined("missing")


class TestHooking:
    def test_hook_observes_calls(self, setup):
        _, _, loader = setup
        calls = []
        binary = loader.load({"traverse": lambda node: node * 2})

        def wrapper(original):
            def hooked(node):
                calls.append(node)
                return original(node)
            return hooked

        ElfLoader.hook(binary, "traverse", wrapper)
        assert binary.call("traverse", 21) == 42
        assert calls == [21]

    def test_patched_memory_really_is_disaggregated(self, setup):
        """The compatibility claim end-to-end: an 'unmodified binary'
        allocates through patched malloc and its data pages to the
        memory node under pressure."""
        system, alloc, loader = setup
        binary = loader.load({"malloc": libc_malloc, "free": libc_free})
        vas = [binary.call("malloc", 4096) for _ in range(1500)]  # ~6 MiB
        for i, va in enumerate(vas):
            system.memory.write(va, bytes([i % 251]) * 64)
        system.clock.advance(5000)
        assert system.metrics()["pages_evicted"] > 0
        for i, va in enumerate(vas):
            assert system.memory.read(va, 64) == bytes([i % 251]) * 64
