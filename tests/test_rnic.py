"""Tests for the RNIC model (§5): registration, protection keys, and
multi-tenant isolation of LibOSes sharing one memory node."""

import pytest

from repro.common.clock import Clock
from repro.common.errors import OutOfMemoryError, ProtectionError
from repro.common.units import MIB, PAGE_SIZE
from repro.core import DilosConfig, DilosSystem
from repro.mem.remote import MemoryNode
from repro.net.rnic import REGISTER_CONTROL_US, Rnic


@pytest.fixture()
def rnic():
    return Rnic(MemoryNode(64 * MIB))


class TestRegistration:
    def test_regions_disjoint(self, rnic):
        a = rnic.register_region(4 * MIB, "a")
        b = rnic.register_region(4 * MIB, "b")
        assert a.base + a.size <= b.base
        assert a.rkey != b.rkey

    def test_capacity_enforced(self, rnic):
        rnic.register_region(60 * MIB)
        with pytest.raises(OutOfMemoryError):
            rnic.register_region(8 * MIB)

    def test_control_path_charged_once(self):
        clock = Clock()
        rnic = Rnic(MemoryNode(16 * MIB), clock=clock)
        rnic.register_region(1 * MIB)
        assert clock.now == pytest.approx(REGISTER_CONTROL_US)

    def test_slot_interface(self, rnic):
        region = rnic.register_region(4 * PAGE_SIZE)
        slots = [region.alloc_slot() for _ in range(4)]
        assert len(set(slots)) == 4
        with pytest.raises(OutOfMemoryError):
            region.alloc_slot()
        region.free_slot(slots[0])
        assert region.free_slots == 1


class TestProtection:
    def test_rw_within_region(self, rnic):
        region = rnic.register_region(1 * MIB)
        region.write_bytes(100, b"guarded")
        assert region.read_bytes(100, 7) == b"guarded"

    def test_forged_rkey_rejected(self, rnic):
        region = rnic.register_region(1 * MIB)
        region.write_bytes(0, b"secret")
        with pytest.raises(ProtectionError):
            rnic.one_sided_read(region.base, 6, rkey=0xDEAD)
        assert rnic.protection_faults == 1

    def test_out_of_bounds_rejected(self, rnic):
        a = rnic.register_region(1 * MIB, "a")
        rnic.register_region(1 * MIB, "b")
        with pytest.raises(ProtectionError):
            # Valid rkey for region a, but offsets reach into region b.
            rnic.one_sided_read(a.base + a.size, 16, rkey=a.rkey)
        with pytest.raises(ProtectionError):
            rnic.one_sided_write(a.base - 1 if a.base else a.size, b"x" * 2,
                                 rkey=a.rkey)

    def test_deregistered_rkey_dies(self, rnic):
        region = rnic.register_region(1 * MIB)
        rnic.deregister_region(region)
        with pytest.raises(ProtectionError):
            region.read_bytes(0, 1)


class TestMultiTenancy:
    def test_two_libos_share_one_memory_node(self):
        """The §5 deployment: two DiLOS guests, one RNIC, full isolation."""
        node = MemoryNode(128 * MIB)
        rnic = Rnic(node)
        tenants = []
        for name in ("tenant-a", "tenant-b"):
            region = rnic.register_region(32 * MIB, name)
            system = DilosSystem(
                DilosConfig(local_mem_bytes=1 * MIB,
                            remote_mem_bytes=32 * MIB),
                memory_backend=region)
            tenants.append((system, region))
        # Both run the same VA-space workload concurrently-ish; their
        # identical virtual addresses must not collide remotely.
        patterns = (b"\xAA" * 64, b"\x55" * 64)
        mappings = []
        for (system, _), pattern in zip(tenants, patterns):
            mapping = system.mmap(4 * MIB, name="ws")
            for i in range(mapping.size // PAGE_SIZE):
                system.memory.write(mapping.base + i * PAGE_SIZE, pattern)
            mappings.append(mapping)
        for (system, _), mapping, pattern in zip(tenants, mappings, patterns):
            system.clock.advance(5000)
            for i in range(mapping.size // PAGE_SIZE):
                assert system.memory.read(
                    mapping.base + i * PAGE_SIZE, 64) == pattern

    def test_malicious_guest_cannot_cross_regions(self):
        node = MemoryNode(64 * MIB)
        rnic = Rnic(node)
        victim = rnic.register_region(16 * MIB, "victim")
        attacker = rnic.register_region(16 * MIB, "attacker")
        victim.write_bytes(0, b"credit card numbers")
        # The attacker controls its own offsets and rkey, as a bypassing
        # LibOS would; neither its key nor a guess reaches the victim.
        with pytest.raises(ProtectionError):
            rnic.one_sided_read(victim.base, 19, rkey=attacker.rkey)
        with pytest.raises(ProtectionError):
            rnic.one_sided_write(victim.base, b"overwrite!",
                                 rkey=attacker.rkey)
        assert victim.read_bytes(0, 19) == b"credit card numbers"
