"""Tests for read-only mappings (PROT_WRITE enforcement) on both kernels."""

import pytest

from repro.common.errors import ProtectionError
from repro.common.units import MIB, PAGE_SIZE
from repro.harness import make_system


@pytest.fixture(params=["dilos-none", "fastswap"])
def system(request):
    return make_system(request.param, 1 * MIB)


class TestReadOnlyMappings:
    def test_read_only_region_readable(self, system):
        region = system.mmap(1 * MIB, writable=False, name="ro")
        assert system.memory.read(region.base, 16) == b"\x00" * 16

    def test_write_to_read_only_raises(self, system):
        region = system.mmap(1 * MIB, writable=False)
        with pytest.raises(ProtectionError):
            system.memory.write(region.base, b"nope")

    def test_write_through_warm_tlb_still_trapped(self, system):
        region = system.mmap(1 * MIB, writable=False)
        system.memory.read(region.base, 8)  # warm the TLB
        with pytest.raises(ProtectionError):
            system.memory.write(region.base, b"x")

    def test_writable_region_unaffected(self, system):
        rw = system.mmap(1 * MIB, writable=True)
        system.memory.write(rw.base, b"fine")
        assert system.memory.read(rw.base, 4) == b"fine"

    def test_protection_survives_eviction_roundtrip(self):
        system = make_system("dilos-readahead", 1 * MIB)
        ro = system.mmap(2 * MIB, writable=False, name="ro")
        # Fault everything in read-only, thrash it out, fault back.
        for i in range(ro.size // PAGE_SIZE):
            system.memory.read(ro.base + i * PAGE_SIZE, 8)
        scratch = system.mmap(2 * MIB, name="scratch")
        for i in range(scratch.size // PAGE_SIZE):
            system.memory.write(scratch.base + i * PAGE_SIZE, b"s")
        system.clock.advance(5000)
        system.memory.read(ro.base, 8)  # refetched page
        with pytest.raises(ProtectionError):
            system.memory.write(ro.base, b"x")

    def test_mixed_span_write_fails_at_boundary(self, system):
        rw = system.mmap(PAGE_SIZE, writable=True, name="rw")
        # Regions have guard pages between them, so a single span cannot
        # cross from rw to ro; verify per-region enforcement instead.
        ro = system.mmap(PAGE_SIZE, writable=False, name="ro")
        system.memory.write(rw.base + PAGE_SIZE - 4, b"edge")
        with pytest.raises(ProtectionError):
            system.memory.write(ro.base, b"edge")
