"""Unit tests for the simulated clock."""

import pytest

from repro.common.clock import Clock


def test_starts_at_zero():
    assert Clock().now == 0.0


def test_advance():
    clock = Clock()
    clock.advance(5.0)
    clock.advance(2.5)
    assert clock.now == 7.5


def test_negative_advance_rejected():
    with pytest.raises(ValueError):
        Clock().advance(-1.0)


def test_advance_to_past_is_noop():
    clock = Clock(start=10.0)
    clock.advance_to(5.0)
    assert clock.now == 10.0


def test_timer_fires_in_order():
    clock = Clock()
    fired = []
    clock.call_at(5.0, lambda: fired.append(("a", clock.now)))
    clock.call_at(3.0, lambda: fired.append(("b", clock.now)))
    clock.advance_to(10.0)
    assert fired == [("b", 3.0), ("a", 5.0)]
    assert clock.now == 10.0


def test_timer_not_fired_early():
    clock = Clock()
    fired = []
    clock.call_after(5.0, lambda: fired.append(1))
    clock.advance(4.99)
    assert fired == []
    clock.advance(0.02)
    assert fired == [1]


def test_timer_rearming():
    """A callback may schedule another timer inside the same advance."""
    clock = Clock()
    fired = []

    def tick():
        fired.append(clock.now)
        if len(fired) < 3:
            clock.call_after(1.0, tick)

    clock.call_at(1.0, tick)
    clock.advance_to(10.0)
    assert fired == [1.0, 2.0, 3.0]


def test_same_deadline_fifo():
    clock = Clock()
    fired = []
    clock.call_at(2.0, lambda: fired.append("first"))
    clock.call_at(2.0, lambda: fired.append("second"))
    clock.advance_to(2.0)
    assert fired == ["first", "second"]
