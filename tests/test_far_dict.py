"""Unit + property tests for the far-memory hash table, and the Redis
server's far-index mode."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.units import MIB
from repro.alloc import Mimalloc
from repro.core import DilosConfig, DilosSystem
from repro.apps.redis import GetWorkload, RedisServer
from repro.apps.redis.dict import BUCKET_SIZE, FarDict, MAX_KEY, fnv1a


def make_env(local_mib=4):
    system = DilosSystem(DilosConfig(local_mem_bytes=int(local_mib * MIB),
                                     remote_mem_bytes=128 * MIB))
    alloc = Mimalloc(system, arena_bytes=64 * MIB)
    return system, alloc


class TestFnv:
    def test_deterministic(self):
        assert fnv1a(b"key") == fnv1a(b"key")

    def test_distinct_keys_distinct_hashes(self):
        hashes = {fnv1a(b"key:%d" % i) for i in range(1000)}
        assert len(hashes) == 1000

    def test_empty_key(self):
        assert fnv1a(b"") == 0xCBF29CE484222325


class TestFarDict:
    def test_put_get(self):
        system, alloc = make_env()
        d = FarDict(system, alloc)
        d.put(b"alpha", 111)
        d.put(b"beta", 222)
        assert d.get(b"alpha") == 111
        assert d.get(b"beta") == 222
        assert d.get(b"gamma") is None
        assert len(d) == 2

    def test_replace(self):
        system, alloc = make_env()
        d = FarDict(system, alloc)
        d.put(b"k", 1)
        d.put(b"k", 2)
        assert d.get(b"k") == 2
        assert len(d) == 1

    def test_delete_and_tombstone_reuse(self):
        system, alloc = make_env()
        d = FarDict(system, alloc)
        d.put(b"k", 1)
        assert d.delete(b"k")
        assert not d.delete(b"k")
        assert d.get(b"k") is None
        d.put(b"k", 3)
        assert d.get(b"k") == 3

    def test_probe_past_deleted_entries(self):
        """A tombstone must not terminate a probe chain."""
        system, alloc = make_env()
        d = FarDict(system, alloc, initial_capacity=8, max_load=0.8)
        keys = [b"key:%d" % i for i in range(5)]
        for i, key in enumerate(keys):
            d.put(key, i)
        d.delete(keys[0])
        for i, key in enumerate(keys[1:], start=1):
            assert d.get(key) == i

    def test_resize_preserves_entries(self):
        system, alloc = make_env()
        d = FarDict(system, alloc, initial_capacity=8)
        for i in range(200):
            d.put(b"key:%d" % i, i * 7)
        assert d.resizes > 0
        assert d.capacity > 8
        for i in range(200):
            assert d.get(b"key:%d" % i) == i * 7

    def test_recycled_pages_read_as_empty(self):
        """calloc semantics: a table built on recycled arena pages must
        not hallucinate entries from stale bytes."""
        system, alloc = make_env()
        junk = alloc.malloc(8 * 1024)
        system.memory.write(junk, b"\xFF" * 8 * 1024)
        alloc.free(junk)
        d = FarDict(system, alloc, initial_capacity=64)
        assert d.get(b"anything") is None
        assert list(d.items()) == []

    def test_key_length_limit(self):
        system, alloc = make_env()
        d = FarDict(system, alloc)
        d.put(b"x" * MAX_KEY, 1)
        with pytest.raises(ValueError):
            d.put(b"x" * (MAX_KEY + 1), 1)

    def test_bad_parameters(self):
        system, alloc = make_env()
        with pytest.raises(ValueError):
            FarDict(system, alloc, initial_capacity=100)  # not power of 2
        with pytest.raises(ValueError):
            FarDict(system, alloc, max_load=0.95)

    def test_items_iterates_live_entries(self):
        system, alloc = make_env()
        d = FarDict(system, alloc)
        for i in range(20):
            d.put(b"k%d" % i, i)
        d.delete(b"k3")
        got = dict(d.items())
        assert len(got) == 19
        assert b"k3" not in got
        assert got[b"k7"] == 7

    def test_survives_eviction(self):
        """The table itself pages to the memory node and back."""
        system, alloc = make_env(local_mib=0.25)
        d = FarDict(system, alloc, initial_capacity=8192)  # 512 KiB table
        for i in range(1000):
            d.put(b"key:%d" % i, i)
        system.clock.advance(5000)
        assert system.metrics()["pages_evicted"] > 0
        for i in range(0, 1000, 13):
            assert d.get(b"key:%d" % i) == i


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.binary(min_size=1, max_size=MAX_KEY),
                          st.integers(min_value=0, max_value=2 ** 60),
                          st.booleans()), max_size=80))
def test_far_dict_matches_python_dict_property(ops):
    system, alloc = make_env()
    d = FarDict(system, alloc, initial_capacity=8)
    shadow = {}
    for key, value, is_delete in ops:
        if is_delete:
            assert d.delete(key) == (key in shadow)
            shadow.pop(key, None)
        else:
            d.put(key, value)
            shadow[key] = value
    assert len(d) == len(shadow)
    for key, value in shadow.items():
        assert d.get(key) == value
    assert dict(d.items()) == shadow


class TestRedisFarIndex:
    def test_get_set_del_through_far_index(self):
        system, alloc = make_env()
        server = RedisServer(system, alloc, index="far")
        server.set(b"k", b"value-1")
        assert server.get(b"k") == b"value-1"
        server.set(b"k", b"value-2")  # overwrite frees the old SDS
        assert server.get(b"k") == b"value-2"
        assert server.delete(b"k")
        assert server.get(b"k") is None
        assert server.dbsize == 0

    def test_lists_rejected_in_far_mode(self):
        system, alloc = make_env()
        server = RedisServer(system, alloc, index="far")
        with pytest.raises(ValueError):
            server.rpush(b"l", [b"x"])

    def test_bad_index_mode(self):
        system, alloc = make_env()
        with pytest.raises(ValueError):
            RedisServer(system, alloc, index="remote")

    def test_get_workload_on_far_index(self):
        system, alloc = make_env(local_mib=1)
        server = RedisServer(system, alloc, index="far")
        workload = GetWorkload(value_size=4096, n_keys=300, n_queries=300)
        workload.populate(server)
        system.clock.advance(5000)
        stats = workload.drive(server, verify=True)
        assert stats.requests_per_second > 0

    def test_far_index_costs_more_than_local(self):
        """Index probes fault like everything else — the far index is
        slower under memory pressure, as §6.2's irregularity argument
        implies."""
        def run(index):
            system, alloc = make_env(local_mib=1)
            server = RedisServer(system, alloc, index=index)
            workload = GetWorkload(value_size=4096, n_keys=400,
                                   n_queries=400)
            workload.populate(server)
            system.clock.advance(5000)
            return workload.drive(server).requests_per_second

        assert run("far") < run("local")
