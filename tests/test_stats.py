"""Unit tests for counters, histograms, percentiles, breakdowns."""

import pytest

from repro.common.stats import Counter, Histogram, LatencyBreakdown, percentile


class TestPercentile:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_pct(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_single_sample(self):
        assert percentile([7.0], 99) == 7.0

    def test_median_interpolation(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_extremes(self):
        data = list(range(101))
        assert percentile(data, 0) == 0
        assert percentile(data, 100) == 100
        assert percentile(data, 99) == 99

    def test_unsorted_input(self):
        assert percentile([5.0, 1.0, 3.0], 50) == 3.0


class TestCounter:
    def test_default_zero(self):
        assert Counter().get("nothing") == 0

    def test_add_and_get(self):
        c = Counter()
        c.add("faults")
        c.add("faults", 4)
        assert c.get("faults") == 5

    def test_as_dict_isolated(self):
        c = Counter()
        c.add("x")
        d = c.as_dict()
        d["x"] = 99
        assert c.get("x") == 1

    def test_reset(self):
        c = Counter()
        c.add("x", 3)
        c.reset()
        assert c.get("x") == 0


class TestHistogram:
    def test_basic_stats(self):
        h = Histogram()
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.record(v)
        assert h.count == 4
        assert h.mean() == 2.5
        assert h.min() == 1.0
        assert h.max() == 4.0
        assert h.pct(50) == 2.5

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError):
            Histogram().mean()


class TestLatencyBreakdown:
    def test_averages(self):
        b = LatencyBreakdown()
        b.record_fault({"fetch": 2.0, "sw": 1.0})
        b.record_fault({"fetch": 4.0})
        assert b.fault_count == 2
        avgs = b.averages()
        assert avgs["fetch"] == 3.0
        assert avgs["sw"] == 0.5
        assert b.average_total() == pytest.approx(3.5)

    def test_empty(self):
        b = LatencyBreakdown()
        assert b.averages() == {}
        with pytest.raises(ValueError):
            b.average_total()
