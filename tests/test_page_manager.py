"""Unit-level tests for the DiLOS page manager (§4.4): watermarks,
cleaning, clock-hand second chances, and the guided-paging vector
lifecycle."""

import pytest

from repro.common.units import MIB, PAGE_SIZE
from repro.alloc import Mimalloc, MimallocGuide
from repro.core import DilosConfig, DilosSystem
from repro.mem import pte as pte_mod


def make_system(local_mib=1.0, **kwargs):
    kwargs.setdefault("prefetcher", "none")
    return DilosSystem(DilosConfig(local_mem_bytes=int(local_mib * MIB),
                                   remote_mem_bytes=64 * MIB, **kwargs))


class TestWatermarks:
    def test_scaled_with_pool(self):
        small = make_system(local_mib=0.25)
        large = make_system(local_mib=16)
        assert small.kernel.page_manager.high_watermark < \
            large.kernel.page_manager.high_watermark

    def test_never_reserves_most_of_a_tiny_pool(self):
        system = make_system(local_mib=0.1875)  # 48 frames
        manager = system.kernel.page_manager
        assert manager.high_watermark <= system.frames.total_frames // 4

    def test_low_below_high(self):
        for mib in (0.25, 1, 4, 64):
            manager = make_system(local_mib=mib).kernel.page_manager
            assert 0 < manager.low_watermark < manager.high_watermark

    def test_reclaimer_maintains_free_reserve(self):
        system = make_system(local_mib=1)
        region = system.mmap(4 * MIB)
        for i in range(region.size // PAGE_SIZE):
            system.memory.write(region.base + i * PAGE_SIZE, b"x")
        system.clock.advance(2000)
        manager = system.kernel.page_manager
        assert system.frames.free_frames >= manager.low_watermark


class TestCleaner:
    def test_dirty_pages_written_back_in_background(self):
        system = make_system(local_mib=4)
        region = system.mmap(1 * MIB)
        pages = region.size // PAGE_SIZE
        for i in range(pages):
            system.memory.write(region.base + i * PAGE_SIZE, b"dirty")
        system.clock.advance(5000)
        # No memory pressure, yet the cleaner proactively wrote everything.
        assert system.kernel.counters.get("pages_cleaned") == pages
        assert system.kernel.comm.stats.bytes_written > 0

    def test_cleaning_clears_dirty_bit(self):
        system = make_system(local_mib=4)
        region = system.mmap(64 * PAGE_SIZE)
        system.memory.write(region.base, b"d")
        vpn = region.base >> 12
        assert pte_mod.is_dirty(system.addr_space.page_table.get(vpn))
        system.clock.advance(5000)
        assert not pte_mod.is_dirty(system.addr_space.page_table.get(vpn))

    def test_rewrite_after_clean_redirties(self):
        system = make_system(local_mib=4)
        region = system.mmap(64 * PAGE_SIZE)
        system.memory.write(region.base, b"first")
        system.clock.advance(5000)
        system.memory.write(region.base, b"second")
        vpn = region.base >> 12
        assert pte_mod.is_dirty(system.addr_space.page_table.get(vpn))


class TestClockAlgorithm:
    def test_hot_pages_survive_eviction(self):
        """Pages touched every round keep their second chance."""
        system = make_system(local_mib=1)
        hot = system.mmap(16 * PAGE_SIZE, name="hot")
        cold = system.mmap(4 * MIB, name="cold")
        for i in range(hot.size // PAGE_SIZE):
            system.memory.write(hot.base + i * PAGE_SIZE, b"h")
        # Stream cold pages while re-touching the hot set.
        for i in range(cold.size // PAGE_SIZE):
            system.memory.write(cold.base + i * PAGE_SIZE, b"c")
            if i % 4 == 0:
                for j in range(hot.size // PAGE_SIZE):
                    system.memory.read(hot.base + j * PAGE_SIZE, 1)
        pt = system.addr_space.page_table
        resident = sum(
            1 for j in range(hot.size // PAGE_SIZE)
            if pte_mod.is_present(pt.get((hot.base >> 12) + j)))
        assert resident >= hot.size // PAGE_SIZE // 2


class TestGuidedVectorLifecycle:
    def build(self):
        system = make_system(local_mib=0.5, guided_paging=True)
        alloc = Mimalloc(system, arena_bytes=16 * MIB)
        system.kernel.register_allocator_guide(MimallocGuide(alloc))
        return system, alloc

    def test_action_vector_recorded_and_refreshed(self):
        system, alloc = self.build()
        manager = system.kernel.page_manager
        vas = [alloc.malloc(256) for _ in range(16)]  # one page's worth
        vpn = vas[0] >> 12
        for va in vas:
            system.memory.write(va, b"v" * 256)
        # Force clean + evict of everything.
        scratch = system.mmap(2 * MIB)
        for i in range(scratch.size // PAGE_SIZE):
            system.memory.write(scratch.base + i * PAGE_SIZE, b"s")
        system.clock.advance(8000)
        entry = system.addr_space.page_table.get(vpn)
        assert pte_mod.classify(entry) is pte_mod.Tag.ACTION
        full_vector = manager.action_vector(vpn)
        covered = sum(length for _s, length in full_vector)
        assert covered >= 16 * 256
        # Free most chunks; the *eviction-time* vector must shrink.
        for va in vas[2:]:
            alloc.free(va)
        system.memory.read(vas[0], 1)  # fault the page back in
        for i in range(scratch.size // PAGE_SIZE):
            system.memory.write(scratch.base + i * PAGE_SIZE, b"t")
        system.clock.advance(8000)
        entry = system.addr_space.page_table.get(vpn)
        assert pte_mod.classify(entry) is pte_mod.Tag.ACTION
        shrunk = sum(length for _s, length in manager.action_vector(vpn))
        assert shrunk < covered

    def test_vector_capped_at_three_segments(self):
        system, alloc = self.build()
        manager = system.kernel.page_manager
        vas = [alloc.malloc(64) for _ in range(60)]
        for va in vas:
            system.memory.write(va, b"z" * 64)
        # Fragment heavily: free every other chunk.
        for va in vas[::2]:
            alloc.free(va)
        scratch = system.mmap(2 * MIB)
        for i in range(scratch.size // PAGE_SIZE):
            system.memory.write(scratch.base + i * PAGE_SIZE, b"s")
        system.clock.advance(8000)
        vpn = vas[1] >> 12
        if pte_mod.classify(system.addr_space.page_table.get(vpn)) is \
                pte_mod.Tag.ACTION:
            assert len(manager.action_vector(vpn)) <= 3

    def test_action_vector_missing_raises(self):
        system, _ = self.build()
        with pytest.raises(ValueError):
            system.kernel.page_manager.action_vector(0x9999)
