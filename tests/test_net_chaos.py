"""Transport chaos suite: random workloads under random fault plans.

Hypothesis drives seeded workloads over all three kernels while a random
:class:`FaultPlan` drops, corrupts, delays, and flaps the wire. The
properties that must hold regardless of the schedule:

* **every byte is preserved** — the reliable transport's checksum +
  retry path never lets a damaged or lost transfer leak into data;
* **the workload always completes** — ``max_consecutive`` bounds random
  fault bursts below the retry budget, so no verb ever exhausts it;
* **retry counts are bounded** — ``net.retry`` can never exceed the
  per-verb budget times the number of verbs issued.

The high-volume variant is marked ``slow`` (run it alone with
``pytest -m slow``; scale it with ``REPRO_CHAOS_EXAMPLES``).
"""

import os
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.units import MIB, PAGE_SIZE
from repro.harness import make_system
from repro.net.faults import FaultPlan, RetryPolicy

CHAOS_EXAMPLES = int(os.environ.get("REPRO_CHAOS_EXAMPLES", "6"))

#: Random-fault budget per verb: with ``max_consecutive=2`` at most two
#: random faults hit any verb, far below the 10-attempt retry budget.
RETRY_POLICY = RetryPolicy(max_attempts=10)
MAX_CONSECUTIVE = 2

fault_plans = st.builds(
    FaultPlan,
    seed=st.integers(min_value=0, max_value=2 ** 16),
    drop=st.floats(min_value=0.0, max_value=0.08),
    corrupt=st.floats(min_value=0.0, max_value=0.05),
    delay=st.floats(min_value=0.0, max_value=0.05),
    delay_us=st.floats(min_value=5.0, max_value=35.0),
    max_consecutive=st.just(MAX_CONSECUTIVE),
)


def run_paging_workload(kind, plan, seed, steps=250):
    """Random read/write mix against a shadow dict; returns metrics."""
    system = make_system(kind, 1 * MIB, remote_bytes=16 * MIB,
                         net_faults=plan, net_retry=RETRY_POLICY)
    region = system.mmap(2 * MIB, name="netchaos")
    pages = region.size // PAGE_SIZE
    rng = random.Random(seed)
    shadow = {}
    for step in range(steps):
        page = rng.randrange(pages)
        va = region.base + page * PAGE_SIZE
        if page in shadow and rng.random() < 0.4:
            assert system.memory.read(va, 16) == shadow[page], (
                f"{kind}: page {page} corrupted under {plan.spec()}")
        else:
            payload = bytes([(step * 7 + page) % 251] * 16)
            system.memory.write(va, payload)
            shadow[page] = payload
    for page, payload in shadow.items():
        assert system.memory.read(region.base + page * PAGE_SIZE, 16) == \
            payload, f"{kind}: page {page} lost under {plan.spec()}"
    return system.metrics().as_flat_dict()


def assert_bounded_retries(metrics):
    ops = metrics.get("net.ops", 0)
    retries = metrics.get("net.retry", 0)
    assert metrics.get("net.giveup", 0) == 0
    # Random faults stop after MAX_CONSECUTIVE attempts per verb, so no
    # verb retries more than MAX_CONSECUTIVE times (no windows here).
    assert retries <= MAX_CONSECUTIVE * ops


@settings(max_examples=CHAOS_EXAMPLES, deadline=None)
@given(plan=fault_plans, seed=st.integers(min_value=0, max_value=10_000))
def test_dilos_preserves_bytes_under_random_faults(plan, seed):
    metrics = run_paging_workload("dilos-readahead", plan, seed)
    assert_bounded_retries(metrics)


@settings(max_examples=CHAOS_EXAMPLES, deadline=None)
@given(plan=fault_plans, seed=st.integers(min_value=0, max_value=10_000))
def test_fastswap_preserves_bytes_under_random_faults(plan, seed):
    metrics = run_paging_workload("fastswap", plan, seed)
    assert_bounded_retries(metrics)


@settings(max_examples=CHAOS_EXAMPLES, deadline=None)
@given(plan=fault_plans, seed=st.integers(min_value=0, max_value=10_000))
def test_aifm_preserves_objects_under_random_faults(plan, seed):
    runtime = make_system("aifm", 256 * 1024, remote_bytes=16 * MIB,
                          net_faults=plan, net_retry=RETRY_POLICY)
    rng = random.Random(seed)
    ptrs = []
    for i in range(192):
        ptrs.append((i, runtime.allocate(2048, bytes([i % 251]) * 2048)))
    rng.shuffle(ptrs)
    for i, ptr in ptrs:
        if rng.random() < 0.3:
            ptr.prefetch()
        assert ptr.read() == bytes([i % 251]) * 2048, (
            f"object {i} corrupted under {plan.spec()}")
    assert_bounded_retries(runtime.metrics().as_flat_dict())


@settings(max_examples=max(4, CHAOS_EXAMPLES // 2), deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       period=st.floats(min_value=800.0, max_value=4000.0),
       down=st.floats(min_value=20.0, max_value=120.0))
def test_periodic_link_flap_never_loses_data(seed, period, down):
    """A flapping link (real outage windows, uncapped) still loses no
    bytes: the retry horizon out-waits any window the strategy builds."""
    plan = FaultPlan(seed=seed, flap_period_us=period, flap_down_us=down)
    metrics = run_paging_workload("dilos-readahead", plan, seed, steps=150)
    assert metrics.get("net.giveup", 0) == 0


@pytest.mark.slow
@settings(max_examples=int(os.environ.get("REPRO_CHAOS_EXAMPLES", "12")),
          deadline=None)
@given(plan=fault_plans, seed=st.integers(min_value=0, max_value=10_000),
       kind=st.sampled_from(["dilos-readahead", "dilos-trend", "fastswap"]))
def test_chaos_high_volume(plan, seed, kind):
    """Longer runs across more kernel flavors; scale with
    ``REPRO_CHAOS_EXAMPLES`` outside tier-1."""
    metrics = run_paging_workload(kind, plan, seed, steps=500)
    assert_bounded_retries(metrics)
