"""Stateful model checking of the DiLOS paging subsystem.

A hypothesis rule machine drives an arbitrary interleaving of mmap,
munmap, reads, writes, and idle time against a reference model (a plain
dict of byte values), checking after every step that:

* every read returns the last value written (or zeros if never written);
* the fault path never reclaims (the core DiLOS claim);
* frame accounting never leaks (used frames == LRU-resident + in-flight);
* local DRAM usage never exceeds the pool;
* transient network faults (random drops/corruption and ``link_flap``
  outage windows) never surface: the reliable transport absorbs them,
  so every paging invariant above holds on a lossy wire too.
"""

import hypothesis.strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import settings

from repro.common.units import MIB, PAGE_SIZE
from repro.core import DilosConfig, DilosSystem
from repro.net.faults import FaultPlan, RetryPolicy


class PagingMachine(RuleBasedStateMachine):
    MAX_REGIONS = 4
    REGION_PAGES = 192  # 768 KiB per region vs a 512 KiB local pool

    @initialize(prefetcher=st.sampled_from(["none", "readahead", "trend",
                                            "stride"]),
                guided=st.booleans(),
                faulty=st.booleans())
    def boot(self, prefetcher, guided, faulty):
        # Half the machines run on a lossy wire: random drops/corruption
        # (capped per verb so the retry budget always wins) plus the
        # link_flap rule's outage windows.
        self.plan = FaultPlan(seed=1234, drop=0.03, corrupt=0.02,
                              max_consecutive=2) if faulty else None
        self.system = DilosSystem(DilosConfig(
            local_mem_bytes=512 * 1024,
            remote_mem_bytes=64 * MIB,
            prefetcher=prefetcher,
            guided_paging=guided,
            net_faults=self.plan,
            net_retry=RetryPolicy(max_attempts=10)))
        self.regions = []
        self.shadow = {}  # (region_index, page) -> 16-byte value
        self.counter = 0

    # -- rules ---------------------------------------------------------------

    @rule()
    def map_region(self):
        if len(self.regions) >= self.MAX_REGIONS:
            return
        region = self.system.mmap(self.REGION_PAGES * PAGE_SIZE,
                                  name=f"r{len(self.regions)}")
        self.regions.append(region)

    @precondition(lambda self: self.regions)
    @rule(index=st.integers(min_value=0, max_value=9))
    def unmap_region(self, index):
        if len(self.regions) <= 1:
            return
        region = self.regions.pop(index % len(self.regions))
        self.system.munmap(region)
        # Keys are (region_object, page); drop the dead region's pages.
        self.shadow = {key: value for key, value in self.shadow.items()
                       if key[0] is not region}

    @precondition(lambda self: self.regions)
    @rule(region_pick=st.integers(min_value=0, max_value=9),
          page=st.integers(min_value=0, max_value=REGION_PAGES - 1))
    def write_page(self, region_pick, page):
        region = self.regions[region_pick % len(self.regions)]
        self.counter += 1
        value = self.counter.to_bytes(8, "little") * 2
        self.system.memory.write(region.base + page * PAGE_SIZE, value)
        self.shadow[(region, page)] = value

    @precondition(lambda self: self.regions)
    @rule(region_pick=st.integers(min_value=0, max_value=9),
          page=st.integers(min_value=0, max_value=REGION_PAGES - 1))
    def read_page(self, region_pick, page):
        region = self.regions[region_pick % len(self.regions)]
        got = self.system.memory.read(region.base + page * PAGE_SIZE, 16)
        expected = self.shadow.get((region, page), b"\x00" * 16)
        assert got == expected, "read returned stale or foreign data"

    @rule(idle=st.floats(min_value=1.0, max_value=500.0))
    def let_background_run(self, idle):
        self.system.clock.advance(idle)

    @precondition(lambda self: self.plan is not None)
    @rule(down=st.floats(min_value=5.0, max_value=200.0))
    def link_flap(self, down):
        """Drop the link for a transient window starting now. The retry
        budget (10 attempts, 50 us timeouts) out-waits any window this
        rule can schedule, so the interleaving must still satisfy every
        invariant and every read must still see its shadow value."""
        self.plan.flap(self.system.clock.now, down)

    # -- invariants ------------------------------------------------------------

    @invariant()
    def no_verb_ever_exhausts_its_retry_budget(self):
        if self.plan is not None:
            assert self.system.kernel.registry.value("net.giveup") == 0

    @invariant()
    def fault_path_never_reclaims(self):
        assert self.system.kernel.counters.get("direct_reclaims") == 0

    @invariant()
    def frames_never_exceed_pool(self):
        assert self.system.frames.used_frames <= \
            self.system.frames.total_frames

    @invariant()
    def frame_accounting_consistent(self):
        frames = self.system.frames
        assert frames.used_frames + frames.free_frames == frames.total_frames

    @invariant()
    def reserve_eventually_maintained(self):
        # The free list may dip between ticks but can never go negative,
        # and the LRU can't reference more frames than exist.
        manager = self.system.kernel.page_manager
        assert manager.resident_pages <= self.system.frames.used_frames


PagingMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=40, deadline=None)
TestPagingModel = PagingMachine.TestCase
