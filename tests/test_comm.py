"""Unit tests for the shared-nothing communication module (§4.5)."""

import pytest

from repro.common.clock import Clock
from repro.common.units import KIB, MIB
from repro.core.comm import CommModule, MODULES
from repro.mem.remote import MemoryNode
from repro.net.latency import LatencyModel


def make_comm(cores=2, shared=False, extra=0.0):
    clock = Clock()
    node = MemoryNode(4 * MIB)
    comm = CommModule(clock, LatencyModel(), node, cores=cores,
                      shared_single_qp=shared,
                      extra_completion_delay=extra)
    return clock, node, comm


class TestQueueAssignment:
    def test_one_qp_per_module_core_pair(self):
        _, _, comm = make_comm(cores=2)
        seen = set()
        for module in MODULES:
            for core in range(2):
                seen.add(id(comm.qp(module, core)))
        assert len(seen) == len(MODULES) * 2
        assert comm.queue_count == len(MODULES) * 2

    def test_qp_is_stable(self):
        _, _, comm = make_comm()
        assert comm.qp("fault", 0) is comm.qp("fault", 0)

    def test_unknown_module_rejected(self):
        _, _, comm = make_comm()
        with pytest.raises(ValueError):
            comm.qp("mystery")

    def test_core_bounds(self):
        _, _, comm = make_comm(cores=1)
        with pytest.raises(ValueError):
            comm.qp("fault", core=1)

    def test_shared_mode_collapses(self):
        _, _, comm = make_comm(cores=2, shared=True)
        qps = {id(comm.qp(m, c)) for m in MODULES for c in range(2)}
        assert len(qps) == 1
        assert comm.queue_count == 1


class TestIsolation:
    def test_fault_qp_not_blocked_by_manager_traffic(self):
        clock, _, comm = make_comm()
        comm.qp("manager").post_write(0, b"\x00" * (256 * KIB))
        urgent = comm.qp("fault").post_read(0, 4 * KIB)
        assert urgent.time < 3.0

    def test_shared_mode_exhibits_hol_blocking(self):
        clock, _, comm = make_comm(shared=True)
        comm.qp("manager").post_write(0, b"\x00" * (256 * KIB))
        blocked = comm.qp("fault").post_read(0, 4 * KIB)
        assert blocked.time > 20.0

    def test_stats_aggregate_across_queues(self):
        _, _, comm = make_comm()
        comm.qp("fault").post_read(0, 4096)
        comm.qp("prefetch").post_read(0, 4096)
        assert comm.stats.bytes_read == 8192
        assert comm.stats.ops_read == 2


class TestTcpEmulation:
    def test_extra_delay_applied_to_every_queue(self):
        model = LatencyModel()
        _, _, plain = make_comm()
        _, _, tcp = make_comm(extra=model.tcp_extra)
        fast = plain.qp("fault").post_read(0, 4096).time
        slow = tcp.qp("fault").post_read(0, 4096).time
        assert slow - fast == pytest.approx(model.tcp_extra)
