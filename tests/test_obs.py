"""Tests for the observability layer: registry, snapshot, tracer, export.

Covers the unified-telemetry contract: canonical namespacing with legacy
aliases, typed snapshots that still behave like the historical flat dicts,
ring-buffered tracing with zero-overhead-when-disabled dispatch, exporter
validity (JSONL and Chrome ``trace_event``), and the E-F6 regression —
fault-handler span sums must agree with the Fig.-6 latency breakdown.
"""

import json

import pytest

from repro.common.units import MIB
from repro.apps.seqrw import SequentialWorkload
from repro.core import DilosConfig, DilosSystem
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    MetricsSnapshot,
    Observability,
    Tracer,
    chrome_trace,
    fault_breakdown_from_spans,
    to_jsonl,
    validate_chrome_trace,
    validate_name,
    write_chrome_trace,
    write_jsonl,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now


class TestNames:
    def test_valid_names_pass_through(self):
        assert validate_name("fault.major") == "fault.major"
        assert validate_name("net.bytes_read") == "net.bytes_read"
        assert validate_name("a.b.c_2") == "a.b.c_2"

    @pytest.mark.parametrize("bad", [
        "major_faults",       # no namespace
        "Fault.major",        # uppercase
        "fault.",             # empty segment
        ".major",             # leading dot
        "fault..major",       # double dot
        "fault.2major",       # segment starts with a digit
        "",                   # empty
        42,                   # not a string
    ])
    def test_invalid_names_rejected(self, bad):
        with pytest.raises(ValueError):
            validate_name(bad)


class TestRegistry:
    def test_counter_identity_and_add(self):
        registry = MetricsRegistry()
        c = registry.counter("fault.major")
        assert registry.counter("fault.major") is c
        registry.add("fault.major", 3)
        registry.add("fault.major")
        assert registry.value("fault.major") == 4

    def test_unregistered_value_is_zero(self):
        assert MetricsRegistry().value("no.such") == 0

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("fault.major")
        with pytest.raises(ValueError):
            registry.gauge("fault.major")
        with pytest.raises(ValueError):
            registry.histogram("fault.major")

    def test_invalid_name_rejected_at_registration(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("major_faults")

    def test_gauge_binds_callable_lazily(self):
        registry = MetricsRegistry()
        box = {"v": 1}
        registry.gauge("swapcache.size", fn=lambda: box["v"])
        assert registry.value("swapcache.size") == 1
        box["v"] = 7
        assert registry.value("swapcache.size") == 7

    def test_value_on_histogram_raises(self):
        registry = MetricsRegistry()
        registry.histogram("fault.wait_us")
        with pytest.raises(TypeError):
            registry.value("fault.wait_us")

    def test_alias_conflict_raises(self):
        registry = MetricsRegistry()
        registry.alias("major_faults", "fault.major")
        registry.alias("major_faults", "fault.major")  # idempotent
        with pytest.raises(ValueError):
            registry.alias("major_faults", "fault.minor")

    def test_reset_zeroes_counters_keeps_gauges(self):
        registry = MetricsRegistry()
        registry.add("fault.major", 9)
        registry.gauge("net.bytes_read", fn=lambda: 123)
        registry.histogram("fault.wait_us").record(1.5)
        registry.reset()
        assert registry.value("fault.major") == 0
        assert registry.value("net.bytes_read") == 123
        assert registry.histogram("fault.wait_us").count == 0

    def test_snapshot_carries_aliases_and_raw_counters(self):
        registry = MetricsRegistry()
        registry.register_aliases({"major_faults": "fault.major",
                                   "heap_used": "heap.bytes_used"})
        registry.add("fault.major", 5)
        registry.gauge("heap.bytes_used", fn=lambda: 4096)
        snap = registry.snapshot("toy", time_us=12.5)
        assert snap.system == "toy"
        assert snap.time_us == 12.5
        assert snap.counters["fault.major"] == 5
        assert snap.counters["heap.bytes_used"] == 4096
        # Only Counter-backed aliases appear in raw_counters.
        assert snap.raw_counters == {"major_faults": 5}


class TestSnapshotMapping:
    def make(self):
        registry = MetricsRegistry()
        registry.register_aliases({"major_faults": "fault.major"})
        registry.add("fault.major", 3)
        return registry.snapshot("toy", 1.0)

    def test_flat_dict_emits_both_spellings(self):
        flat = self.make().as_flat_dict()
        assert flat["fault.major"] == 3
        assert flat["major_faults"] == 3
        assert flat["counter.major_faults"] == 3
        assert flat["system"] == "toy"

    def test_mapping_protocol(self):
        snap = self.make()
        assert snap["fault.major"] == 3
        assert "major_faults" in snap
        assert snap.get("nope") is None
        assert len(snap) == len(snap.as_flat_dict())
        assert dict(snap.items())["major_faults"] == 3

    def test_setitem_lands_in_extra_and_shadows(self):
        snap = self.make()
        snap["replay_us"] = 42.0
        snap["fault.major"] = "shadowed"
        assert snap.extra == {"replay_us": 42.0, "fault.major": "shadowed"}
        assert snap["replay_us"] == 42.0
        assert snap["fault.major"] == "shadowed"
        assert snap.counters["fault.major"] == 3  # registry data untouched

    def test_typed_value_accessor(self):
        snap = self.make()
        assert snap.value("fault.major") == 3
        assert snap.value("fault.minor", default=-1) == -1

    def test_metrics_snapshot_is_mapping(self):
        assert isinstance(self.make(), MetricsSnapshot)


class TestTracer:
    def test_disabled_by_default_and_null_tracer(self):
        assert Tracer().enabled is False
        assert NULL_TRACER.enabled is False
        NULL_TRACER.instant("x.y", "x", 1.0)
        NULL_TRACER.complete("x.y", "x", 1.0, 2.0)
        with NULL_TRACER.span("x.y", "x", FakeClock()):
            pass
        assert len(NULL_TRACER) == 0

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.instant("a.b", "a", 1.0)
        tracer.complete("a.b", "a", 1.0, 1.0)
        assert len(tracer) == 0
        assert tracer.dropped == 0

    def test_instant_and_complete_shapes(self):
        tracer = Tracer(enabled=True)
        tracer.instant("prefetch.issue", "prefetch", 2.0, {"vpn": 7})
        tracer.complete("fault.major", "fault", 1.0, 3.5, {"vpn": 7})
        instant, span = tracer.events()
        assert instant.ph == "i" and instant.dur == 0.0
        assert span.ph == "X" and span.dur == 3.5
        assert span.as_dict()["dur"] == 3.5
        assert "dur" not in instant.as_dict()

    def test_ring_overflow_drops_oldest_and_counts(self):
        tracer = Tracer(capacity=4, enabled=True)
        for i in range(10):
            tracer.instant("e.v", "cat", float(i))
        assert len(tracer) == 4
        assert tracer.dropped == 6
        assert [r.ts for r in tracer.events()] == [6.0, 7.0, 8.0, 9.0]

    def test_span_measures_clock_delta(self):
        tracer = Tracer(enabled=True)
        clock = FakeClock(10.0)
        with tracer.span("reclaim.direct", "reclaim", clock, {"n": 1}):
            clock.now = 13.0
        (record,) = tracer.events()
        assert record.ts == 10.0
        assert record.dur == 3.0
        assert record.args == {"n": 1}

    def test_span_emits_on_exception(self):
        tracer = Tracer(enabled=True)
        clock = FakeClock()
        with pytest.raises(RuntimeError):
            with tracer.span("a.b", "a", clock):
                clock.now = 1.0
                raise RuntimeError("boom")
        assert len(tracer) == 1

    def test_clear(self):
        tracer = Tracer(capacity=1, enabled=True)
        tracer.instant("a.b", "a", 0.0)
        tracer.instant("a.b", "a", 1.0)
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0


class TestExport:
    def traced(self):
        tracer = Tracer(enabled=True)
        tracer.instant("prefetch.issue", "prefetch", 0.5, {"vpn": 1})
        tracer.complete("fault.major", "fault", 1.0, 2.0,
                        {"components": {"fetch": 1.5, "exception": 0.5}})
        tracer.complete("fault.major", "fault", 4.0, 1.0,
                        {"components": {"fetch": 0.6, "exception": 0.4}})
        return tracer

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert write_jsonl(self.traced(), path) == 3
        lines = [json.loads(line) for line in
                 path.read_text().strip().splitlines()]
        assert [l["ph"] for l in lines] == ["i", "X", "X"]
        assert lines[1]["dur"] == 2.0
        assert to_jsonl([]) == ""

    def test_chrome_trace_structure(self):
        doc = chrome_trace(self.traced())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "M"]
        assert "process_name" in names
        assert "thread_name" in names
        body = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        # Per-category tids; all events carry pid/tid.
        tids = {e["tid"] for e in body}
        assert len(tids) == 2
        instant = next(e for e in body if e["ph"] == "i")
        assert instant["s"] == "t"

    def test_chrome_trace_sorted_despite_buffer_order(self):
        # An enclosing span is buffered at exit, *after* events its body
        # emitted — the exporter must restore timestamp order.
        tracer = Tracer(enabled=True)
        tracer.complete("reclaim.cleaner_pass", "reclaim", 58.0, 0.2)
        tracer.complete("reclaim.direct", "reclaim", 55.0, 4.0)
        doc = validate_chrome_trace(chrome_trace(tracer))
        body = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        assert [e["ts"] for e in body] == [55.0, 58.0]

    def test_validate_accepts_json_string(self):
        doc = chrome_trace(self.traced())
        assert validate_chrome_trace(json.dumps(doc))["traceEvents"]

    @pytest.mark.parametrize("doc,message", [
        ("[not json", "not valid JSON"),
        ({}, "traceEvents"),
        ({"traceEvents": {}}, "must be a list"),
        ({"traceEvents": [{"ph": "X"}]}, "missing"),
        ({"traceEvents": [{"name": "a", "ph": "B", "pid": 1, "tid": 1,
                           "ts": 0}]}, "unsupported ph"),
        ({"traceEvents": [{"name": "a", "ph": "i", "pid": 1, "tid": 1,
                           "ts": -1}]}, "non-negative"),
        ({"traceEvents": [{"name": "a", "ph": "X", "pid": 1, "tid": 1,
                           "ts": 0}]}, "dur"),
        ({"traceEvents": [
            {"name": "a", "ph": "i", "pid": 1, "tid": 1, "ts": 5},
            {"name": "b", "ph": "i", "pid": 1, "tid": 1, "ts": 4},
        ]}, "backwards"),
    ])
    def test_validate_rejects_bad_documents(self, doc, message):
        with pytest.raises(ValueError, match=message):
            validate_chrome_trace(doc)

    def test_write_chrome_trace_validates_and_writes(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(self.traced(), path)
        validate_chrome_trace(path.read_text())

    def test_fault_breakdown_from_spans(self):
        report = fault_breakdown_from_spans(self.traced())
        assert report["count"] == 2
        assert report["avg_total_us"] == pytest.approx(1.5)
        assert report["components"]["fetch"] == pytest.approx(1.05)
        assert report["span_total_us"] == pytest.approx(3.0)
        assert report["component_total_us"] == pytest.approx(3.0)
        assert fault_breakdown_from_spans([])["count"] == 0


class TestObservabilityBundle:
    def test_default_has_null_tracer(self):
        obs = Observability.default()
        assert obs.tracer is NULL_TRACER
        assert isinstance(obs.registry, MetricsRegistry)

    def test_tracing_enables_ring_buffer(self):
        obs = Observability.tracing(capacity=16)
        assert obs.tracer.enabled
        assert obs.tracer.capacity == 16


def run_traced_seq_read(ws_mib=2, ratio=0.25):
    obs = Observability.tracing()
    ws = ws_mib * MIB
    system = DilosSystem(DilosConfig(local_mem_bytes=int(ws * ratio),
                                     remote_mem_bytes=64 * MIB), obs=obs)
    result = SequentialWorkload(ws).run(system, mode="read")
    return system, obs, result


class TestTracedDilos:
    """E-F6 regression: trace spans must agree with the Fig.-6 breakdown."""

    def test_span_sums_match_breakdown_within_5pct(self):
        system, obs, _ = run_traced_seq_read()
        report = fault_breakdown_from_spans(obs.tracer.events())
        snap = system.metrics()
        count = snap.breakdown_counts["fault.breakdown"]
        assert report["count"] == count == snap.counters["fault.major"] > 0
        reported_total = sum(snap.breakdowns["fault.breakdown"].values())
        reported_sum = reported_total * count
        assert report["span_total_us"] == pytest.approx(reported_sum,
                                                        rel=0.05)
        assert report["component_total_us"] == pytest.approx(reported_sum,
                                                             rel=0.05)

    def test_trace_exports_valid_chrome_trace(self, tmp_path):
        _, obs, _ = run_traced_seq_read()
        doc = write_chrome_trace(obs.tracer, tmp_path / "t.json")
        body = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        assert body
        categories = {e["name"] for e in doc["traceEvents"]
                      if e["ph"] == "M" and e["name"] == "thread_name"}
        assert categories  # per-subsystem tracks exist

    def test_trace_survives_memory_pressure(self, tmp_path):
        # Direct reclaim overlaps background cleaner ticks; the exporter
        # must still produce a monotonic trace (regression for nested
        # same-category spans).
        _, obs, _ = run_traced_seq_read(ratio=0.125)
        write_chrome_trace(obs.tracer, tmp_path / "t.json")

    def test_untraced_system_records_nothing(self):
        ws = 2 * MIB
        system = DilosSystem(DilosConfig(local_mem_bytes=ws // 4,
                                         remote_mem_bytes=64 * MIB))
        SequentialWorkload(ws).run(system, mode="read")
        assert len(system.obs.tracer) == 0
        assert system.metrics()["major_faults"] > 0
