"""Cross-kernel telemetry contract: every kernel reports through a
:class:`~repro.obs.MetricsRegistry` and the shared concepts land on
*identical* canonical keys — a DiLOS major fault, a Fastswap major fault,
and an AIFM object miss are all ``fault.major``. This is what lets the
harness build cross-system tables without per-kernel key translation
(the metric-name drift the unified API fixed)."""

import pytest

from repro.common.units import KIB, MIB, PAGE_SIZE
from repro.baselines.aifm import AifmConfig, AifmRuntime
from repro.baselines.fastswap import FastswapConfig, FastswapSystem
from repro.core import DilosConfig, DilosSystem
from repro.obs import SHARED_KEYS, MetricsRegistry, MetricsSnapshot
from repro.harness import make_system


def exercised_dilos():
    system = DilosSystem(DilosConfig(local_mem_bytes=1 * MIB,
                                     remote_mem_bytes=64 * MIB))
    region = system.mmap(4 * MIB)
    for i in range(region.size // PAGE_SIZE):
        system.memory.write(region.base + i * PAGE_SIZE, b"d")
    system.memory.read(region.base, 64)
    return system


def exercised_fastswap():
    system = FastswapSystem(FastswapConfig(local_mem_bytes=1 * MIB,
                                           remote_mem_bytes=64 * MIB))
    region = system.mmap(4 * MIB)
    for i in range(region.size // PAGE_SIZE):
        system.memory.write(region.base + i * PAGE_SIZE, b"f")
    system.memory.read(region.base, 64)
    return system


def exercised_aifm():
    runtime = AifmRuntime(AifmConfig(local_heap_bytes=256 * KIB,
                                     remote_mem_bytes=64 * MIB))
    ptrs = [runtime.allocate(16 * KIB, data=b"a" * 16) for _ in range(32)]
    for ptr in ptrs:
        ptr.read(0, 16)
    return runtime


ALL_KERNELS = [exercised_dilos, exercised_fastswap, exercised_aifm]


class TestSharedKeyContract:
    @pytest.mark.parametrize("build", ALL_KERNELS,
                             ids=["dilos", "fastswap", "aifm"])
    def test_shared_keys_present(self, build):
        snap = build().metrics()
        assert isinstance(snap, MetricsSnapshot)
        missing = SHARED_KEYS - set(snap.counters)
        assert not missing, f"missing canonical keys: {sorted(missing)}"

    @pytest.mark.parametrize("build", ALL_KERNELS,
                             ids=["dilos", "fastswap", "aifm"])
    def test_kernel_reports_through_registry(self, build):
        system = build()
        assert isinstance(system.obs.registry, MetricsRegistry)
        assert system.metrics().counters["fault.major"] > 0

    def test_major_fault_key_identical_across_kernels(self):
        # The drift fix: one canonical spelling, three kernels — each
        # kernel's historical name (major_faults, object_misses) aliases
        # onto it.
        for build in ALL_KERNELS:
            snap = build().metrics()
            legacy_names = [legacy for legacy, canonical
                            in snap.aliases.items()
                            if canonical == "fault.major"]
            assert legacy_names
            for legacy in legacy_names:
                assert snap[legacy] == snap.counters["fault.major"]

    def test_prefetch_issued_unified(self):
        # Fastswap's readahead_issued and DiLOS/AIFM's prefetches_issued
        # all map onto prefetch.issued.
        fs = exercised_fastswap().metrics()
        assert fs["readahead_issued"] == fs.counters["prefetch.issued"]
        assert fs["prefetches_issued"] == fs.counters["prefetch.issued"]
        dl = exercised_dilos().metrics()
        assert dl["prefetches_issued"] == dl.counters["prefetch.issued"]

    def test_eviction_unified(self):
        # AIFM evacuation counts as reclaim.pages_evicted, like paging
        # kernels' evictions; Fastswap frontswap writebacks land on
        # reclaim.pages_cleaned.
        aifm = exercised_aifm().metrics()
        assert aifm["objects_evacuated"] == \
            aifm.counters["reclaim.pages_evicted"]
        fs = exercised_fastswap().metrics()
        assert fs["writebacks"] == fs.counters["reclaim.pages_cleaned"]

    def test_legacy_flat_values_match_canonical(self):
        for build, name in zip(ALL_KERNELS, ["dilos", "fastswap", "aifm"]):
            snap = build().metrics()
            flat = snap.as_flat_dict()
            for legacy, canonical in snap.aliases.items():
                if canonical in snap.counters:
                    assert flat[legacy] == snap.counters[canonical], \
                        f"{name}: {legacy} != {canonical}"

    def test_net_bytes_flow_on_all_kernels(self):
        for build in ALL_KERNELS:
            snap = build().metrics()
            assert snap.counters["net.bytes_read"] > 0


class TestMakeSystemObs:
    @pytest.mark.parametrize("kind", ["fastswap", "dilos-readahead", "aifm"])
    def test_obs_injected(self, kind):
        from repro.obs import Observability
        obs = Observability.tracing(capacity=128)
        system = make_system(kind, local_bytes=1 * MIB)
        assert system.obs is not None
        traced = make_system(kind, local_bytes=1 * MIB, obs=obs)
        assert traced.obs is obs
        assert traced.obs.tracer.enabled

    def test_default_obs_is_fresh_per_system(self):
        a = make_system("dilos-readahead", local_bytes=1 * MIB)
        b = make_system("dilos-readahead", local_bytes=1 * MIB)
        assert a.obs is not b.obs
        assert a.obs.registry is not b.obs.registry
