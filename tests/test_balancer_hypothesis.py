"""Property-based tests for the consistent-hash balancer.

The ring's selling point is *bounded key movement*: membership changes
remap only the keyspace adjacent to the joining/leaving tenant's ring
points, never shuffle keys between two surviving tenants. ``pick``
returns an *index* into the tenant tuple and indices shift on
membership change, so every property compares owners by tenant *name*.
"""

from hypothesis import given, settings, strategies as st

from repro.serve.balancer import ConsistentHashBalancer

tenant_names = st.lists(
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=6),
    min_size=2, max_size=6, unique=True)

routing_keys = st.lists(st.binary(min_size=1, max_size=16),
                        min_size=1, max_size=32, unique=True)


def owners(tenants, keys, replicas=64):
    """Map each routing key to its owner's *name* under the ring."""
    ring = ConsistentHashBalancer(tenants, replicas=replicas)
    depths = [0] * len(tenants)
    return {key: ring.tenants[ring.pick(key, depths)] for key in keys}


@settings(max_examples=50, deadline=None)
@given(tenants=tenant_names, keys=routing_keys)
def test_ring_is_deterministic(tenants, keys):
    assert owners(tenants, keys) == owners(tenants, keys)


@settings(max_examples=50, deadline=None)
@given(tenants=tenant_names, keys=routing_keys)
def test_enrollment_order_does_not_matter(tenants, keys):
    """Ownership depends only on the membership *set*, not the order the
    tenants were enrolled in."""
    assert owners(tenants, keys) == owners(sorted(tenants, reverse=True),
                                           keys)


@settings(max_examples=50, deadline=None)
@given(tenants=tenant_names,
       joiner=st.text(alphabet="ABCDEFGH", min_size=1, max_size=6),
       keys=routing_keys)
def test_join_moves_keys_only_to_joiner(tenants, joiner, keys):
    """When a tenant joins, every key that changes owner moves TO the
    joiner — no key is shuffled between two pre-existing tenants."""
    before = owners(tenants, keys)
    after = owners(tenants + [joiner], keys)
    for key in keys:
        if after[key] != before[key]:
            assert after[key] == joiner


@settings(max_examples=50, deadline=None)
@given(data=st.data(), tenants=tenant_names, keys=routing_keys)
def test_leave_moves_only_departed_keys(data, tenants, keys):
    """When a tenant leaves, only the keys it owned change hands, and
    the survivors' keys stay put."""
    leaver = data.draw(st.sampled_from(tenants), label="leaver")
    survivors = [t for t in tenants if t != leaver]
    before = owners(tenants, keys)
    after = owners(survivors, keys)
    for key in keys:
        if before[key] == leaver:
            assert after[key] != leaver
        else:
            assert after[key] == before[key]


@settings(max_examples=50, deadline=None)
@given(tenants=tenant_names, keys=routing_keys)
def test_affinity_within_one_instance(tenants, keys):
    """Repeated picks for the same key on one live ring always agree,
    whatever the queue depths are doing."""
    ring = ConsistentHashBalancer(tenants)
    for key in keys:
        idle = ring.pick(key, [0] * len(tenants))
        busy = ring.pick(key, list(range(len(tenants))))
        assert idle == busy
