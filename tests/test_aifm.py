"""Unit + integration tests for the AIFM baseline."""

import pytest

from repro.common.units import KIB, MIB
from repro.baselines.aifm import AifmConfig, AifmRuntime, RemArray


def make_runtime(heap_mib=1, remote_mib=64, **kwargs):
    return AifmRuntime(AifmConfig(local_heap_bytes=heap_mib * MIB,
                                  remote_mem_bytes=remote_mib * MIB,
                                  **kwargs))


class TestObjects:
    def test_roundtrip_local(self):
        rt = make_runtime()
        ptr = rt.allocate(100, data=b"hello")
        assert ptr.read(0, 5) == b"hello"
        assert ptr.size == 100

    def test_write_read(self):
        rt = make_runtime()
        ptr = rt.allocate(64)
        ptr.write(b"abc", offset=10)
        assert ptr.read(10, 3) == b"abc"

    def test_bounds_checked(self):
        rt = make_runtime()
        ptr = rt.allocate(16)
        with pytest.raises(ValueError):
            ptr.read(10, 10)
        with pytest.raises(ValueError):
            ptr.write(b"x" * 20)

    def test_free_then_deref_rejected(self):
        rt = make_runtime()
        ptr = rt.allocate(16)
        ptr.free()
        with pytest.raises(ValueError):
            ptr.read()

    def test_deref_charges_check(self):
        rt = make_runtime()
        ptr = rt.allocate(16, data=b"x" * 16)
        t0 = rt.clock.now
        ptr.read()
        assert rt.clock.now - t0 >= rt.model.aifm_deref_check


class TestEvacuation:
    def test_heap_stays_under_budget(self):
        rt = make_runtime(heap_mib=1)
        for i in range(1000):
            rt.allocate(4 * KIB, data=bytes([i % 256]) * 16)
        assert rt.heap_used <= rt.config.local_heap_bytes
        assert rt.counters.get("objects_evacuated") > 0

    def test_data_survives_evacuation(self):
        rt = make_runtime(heap_mib=1)
        ptrs = [rt.allocate(4 * KIB, data=bytes([i % 251]) * 64)
                for i in range(1000)]
        for i, ptr in enumerate(ptrs):
            assert ptr.read(0, 64) == bytes([i % 251]) * 64

    def test_miss_fetches_object(self):
        rt = make_runtime(heap_mib=1)
        ptrs = [rt.allocate(4 * KIB) for _ in range(1000)]
        assert not ptrs[0].is_local()
        ptrs[0].read(0, 1)
        assert ptrs[0].is_local()
        assert rt.counters.get("object_misses") >= 1

    def test_tcp_miss_slower_than_rdma(self):
        def miss_time(transport):
            rt = make_runtime(heap_mib=1, transport=transport)
            ptrs = [rt.allocate(4 * KIB) for _ in range(1000)]
            t0 = rt.clock.now
            ptrs[0].read(0, 1)
            return rt.clock.now - t0

        gap = miss_time("tcp") - miss_time("rdma")
        model = make_runtime().model
        assert gap == pytest.approx(model.tcp_extra, abs=0.2)


class TestRemArray:
    def test_element_roundtrip(self):
        rt = make_runtime(heap_mib=4)
        arr = RemArray(rt, count=1000, item_size=8)
        for i in range(1000):
            arr.set(i, i.to_bytes(8, "little"))
        for i in range(0, 1000, 7):
            assert int.from_bytes(arr.get(i), "little") == i

    def test_roundtrip_under_pressure(self):
        rt = make_runtime(heap_mib=1)
        arr = RemArray(rt, count=4096, item_size=512)  # 2 MiB > 1 MiB heap
        for i in range(4096):
            arr.set(i, i.to_bytes(8, "little") * 64)
        assert rt.counters.get("objects_evacuated") > 0
        for i in range(4096):
            assert arr.get(i) == i.to_bytes(8, "little") * 64

    def test_index_bounds(self):
        rt = make_runtime()
        arr = RemArray(rt, count=10, item_size=8)
        with pytest.raises(IndexError):
            arr.get(10)

    def test_scan_yields_in_order(self):
        rt = make_runtime(heap_mib=1)
        arr = RemArray(rt, count=2048, item_size=8)
        for i in range(2048):
            arr.set(i, i.to_bytes(8, "little"))
        values = [int.from_bytes(item, "little") for item in arr.scan()]
        assert values == list(range(2048))

    def test_scan_prefetch_overlaps(self):
        """A prefetched scan over cold data beats demand misses clearly."""
        def scan_time(depth):
            rt = make_runtime(heap_mib=1, prefetch_depth=depth)
            arr = RemArray(rt, count=8192, item_size=8)
            for i in range(8192):
                arr.set(i, b"\x01" * 8)
            # Evacuate everything by blowing through the heap.
            spill = [rt.allocate(4 * KIB) for _ in range(300)]
            for ptr in spill:
                ptr.read(0, 1)
            t0 = rt.clock.now
            for _item in arr.scan():
                rt.cpu(0.02)
            return rt.clock.now - t0

        assert scan_time(8) < 0.75 * scan_time(0)

    def test_scan_chunks_bulk(self):
        rt = make_runtime(heap_mib=1)
        arr = RemArray(rt, count=1024, item_size=8)
        for i in range(1024):
            arr.set(i, bytes([i % 256]) * 8)
        total = b"".join(arr.scan_chunks())
        assert len(total) == 1024 * 8
        assert total[8:16] == bytes([1]) * 8


class TestRemList:
    def test_append_iterate(self):
        rt = make_runtime(heap_mib=4)
        from repro.baselines.aifm import RemList
        lst = RemList(rt)
        for i in range(50):
            lst.append(b"item-%03d" % i)
        assert len(lst) == 50
        assert list(lst) == [b"item-%03d" % i for i in range(50)]

    def test_iterate_under_pressure(self):
        rt = make_runtime(heap_mib=1)
        from repro.baselines.aifm import RemList
        lst = RemList(rt)
        for i in range(3000):  # ~3000 x 1 KiB nodes >> 1 MiB heap
            lst.append(i.to_bytes(4, "little") * 256)
        values = list(lst)
        assert len(values) == 3000
        assert values[1234] == (1234).to_bytes(4, "little") * 256
        assert rt.counters.get("objects_evacuated") > 0

    def test_runahead_overlaps_fetches_with_compute(self):
        """Pointer chasing serializes at fetch latency — the pipeline can
        only hide the per-node *compute*, so the win is modest; what it
        does do is turn demand misses into overlapped prefetches."""
        from repro.baselines.aifm import RemList

        def traverse(runahead):
            rt = make_runtime(heap_mib=1)
            lst = RemList(rt, runahead=runahead)
            for i in range(2000):
                lst.append(b"x" * 1024)
            spill = [rt.allocate(4 * KIB) for _ in range(300)]
            for ptr in spill:
                ptr.read(0, 1)
            t0 = rt.clock.now
            for _payload in lst:
                rt.cpu(0.5)
            return rt.clock.now - t0, rt.counters.get("object_misses")

        t_none, misses_none = traverse(0)
        t_ahead, misses_ahead = traverse(2)
        assert misses_ahead < 0.3 * misses_none
        assert t_ahead < t_none

    def test_free_releases_nodes(self):
        rt = make_runtime(heap_mib=4)
        from repro.baselines.aifm import RemList
        lst = RemList(rt)
        for i in range(20):
            lst.append(b"n")
        allocated = rt.counters.get("objects_allocated")
        lst.free()
        assert rt.counters.get("objects_freed") == allocated
        assert list(lst) == []


class TestRemHashTable:
    def test_put_get_delete(self):
        rt = make_runtime(heap_mib=4)
        from repro.baselines.aifm import RemHashTable
        table = RemHashTable(rt)
        table.put(b"k", b"value")
        assert table.get(b"k") == b"value"
        assert b"k" in table
        assert table.delete(b"k")
        assert table.get(b"k") is None
        assert not table.delete(b"k")

    def test_overwrite_frees_old_object(self):
        rt = make_runtime(heap_mib=4)
        from repro.baselines.aifm import RemHashTable
        table = RemHashTable(rt)
        table.put(b"k", b"old" * 100)
        table.put(b"k", b"new" * 100)
        assert table.get(b"k") == b"new" * 100
        assert rt.counters.get("objects_freed") == 1

    def test_values_survive_evacuation(self):
        rt = make_runtime(heap_mib=1)
        from repro.baselines.aifm import RemHashTable
        table = RemHashTable(rt)
        for i in range(2000):
            table.put(b"key:%d" % i, bytes([i % 251]) * 1024)
        assert rt.counters.get("objects_evacuated") > 0
        for i in range(0, 2000, 17):
            assert table.get(b"key:%d" % i) == bytes([i % 251]) * 1024
