"""Unit + property tests of the unified-page-table PTE encoding (§4.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.mem import pte


class TestTags:
    def test_invalid_is_zero(self):
        assert pte.classify(0) is pte.Tag.INVALID

    def test_local(self):
        p = pte.make_local(42)
        assert pte.classify(p) is pte.Tag.LOCAL
        assert pte.is_present(p)
        assert pte.frame_of(p) == 42

    def test_remote(self):
        p = pte.make_remote(7)
        assert pte.classify(p) is pte.Tag.REMOTE
        assert not pte.is_present(p)
        assert pte.payload(p) == 7

    def test_fetching(self):
        p = pte.make_fetching(1234)
        assert pte.classify(p) is pte.Tag.FETCHING
        assert pte.payload(p) == 1234

    def test_action(self):
        p = pte.make_action(55)
        assert pte.classify(p) is pte.Tag.ACTION
        assert pte.payload(p) == 55

    def test_malformed_rejected(self):
        # Payload present but no tag bits: corruption, not INVALID.
        with pytest.raises(ValueError):
            pte.classify(1 << 12)

    def test_frame_of_nonpresent_rejected(self):
        with pytest.raises(ValueError):
            pte.frame_of(pte.make_remote(1))


class TestBits:
    def test_accessed_roundtrip(self):
        p = pte.make_local(3)
        assert not pte.is_accessed(p)
        p = pte.set_accessed(p)
        assert pte.is_accessed(p)
        p = pte.clear_accessed(p)
        assert not pte.is_accessed(p)

    def test_dirty_roundtrip(self):
        p = pte.make_local(3)
        assert not pte.is_dirty(p)
        p = pte.set_dirty(p)
        assert pte.is_dirty(p)
        p = pte.clear_dirty(p)
        assert not pte.is_dirty(p)

    def test_readonly_local(self):
        p = pte.make_local(9, writable=False)
        assert not p & pte.PTE_WRITE
        assert pte.classify(p) is pte.Tag.LOCAL


@given(frame=st.integers(min_value=0, max_value=2 ** 40),
       writable=st.booleans(), accessed=st.booleans(), dirty=st.booleans())
def test_local_roundtrip_property(frame, writable, accessed, dirty):
    p = pte.make_local(frame, writable=writable, accessed=accessed, dirty=dirty)
    assert pte.classify(p) is pte.Tag.LOCAL
    assert pte.frame_of(p) == frame
    assert pte.is_accessed(p) == accessed
    assert pte.is_dirty(p) == dirty
    assert bool(p & pte.PTE_WRITE) == writable


@given(payload=st.integers(min_value=0, max_value=2 ** 40))
def test_nonpresent_payload_roundtrip_property(payload):
    for maker, tag in [(pte.make_remote, pte.Tag.REMOTE),
                       (pte.make_fetching, pte.Tag.FETCHING),
                       (pte.make_action, pte.Tag.ACTION)]:
        p = maker(payload)
        assert pte.classify(p) is tag
        assert pte.payload(p) == payload
        assert not pte.is_present(p)


@given(payload=st.integers(min_value=1, max_value=2 ** 30))
def test_tags_are_distinct_property(payload):
    encodings = {
        pte.make_local(payload),
        pte.make_remote(payload),
        pte.make_fetching(payload),
        pte.make_action(payload),
    }
    assert len(encodings) == 4
