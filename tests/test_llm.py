"""Unit tests for the LLM inference workload (:mod:`repro.apps.llm`):
the pure token/KV model, the KV-cache engines, the generate loop, the
serving port with finished-sequence eviction, and the P:D plumbing.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.apps.api import SERVICES, Request
from repro.apps.llm import (
    KvCache,
    LlmConfig,
    LlmWorkload,
    PdSweepRunner,
    TieringPolicy,
    attn_positions,
    best_split_per_ratio,
    generate,
    kv_entry,
    make_kv_cache,
    next_token,
    parse_pd_split,
    prompt_tokens,
    sample_requests,
    token_stream_digest,
)
from repro.common.units import MIB
from repro.harness import make_system

_CFG = LlmConfig(layers=2, heads=2, head_dim=16, max_tokens=32,
                 attn_window=4)


def _system(kind: str = "dilos-readahead"):
    return make_system(kind, 256 * 1024, remote_bytes=16 * MIB)


# -- config / policy validation ----------------------------------------------

def test_config_geometry():
    cfg = LlmConfig(layers=3, heads=4, head_dim=8, max_tokens=16)
    assert cfg.entry_bytes == 32
    assert cfg.kv_token_bytes == 2 * 3 * 32
    assert cfg.seq_bytes == 16 * cfg.kv_token_bytes


@pytest.mark.parametrize("bad", [
    dict(layers=0), dict(heads=-1), dict(head_dim=0), dict(vocab=0),
    dict(max_tokens=0), dict(attn_window=0), dict(attn_window=17),
])
def test_config_rejects_bad_dimensions(bad):
    with pytest.raises(ValueError):
        LlmConfig(**bad)


def test_tiering_policy_validation():
    TieringPolicy(hot_layers=0, capacity_tokens=None)
    with pytest.raises(ValueError):
        TieringPolicy(hot_layers=-1)
    with pytest.raises(ValueError):
        TieringPolicy(capacity_tokens=0)


# -- the pure model -----------------------------------------------------------

def test_kv_entry_deterministic_and_tiled():
    a = kv_entry(7, 3, 1, 0, 32)
    assert a == kv_entry(7, 3, 1, 0, 32)
    assert len(a) == 32
    assert a != kv_entry(7, 3, 1, 1, 32), "K and V must differ"
    big = kv_entry(7, 3, 1, 0, 100)
    assert len(big) == 100
    assert big[64:] == big[:36], "entries beyond one block tile it"


def test_prompt_tokens_are_a_prefix_stable_stream():
    short = prompt_tokens(5, 4, 1000)
    long = prompt_tokens(5, 40, 1000)
    assert short == long[:4]
    assert all(0 <= t < 1000 for t in long)
    assert prompt_tokens(6, 4, 1000) != short


def test_attn_positions_bounded_by_history_and_window():
    assert attn_positions(1, 0, 0, 8) == []
    few = attn_positions(1, 3, 0, 8)
    assert len(few) == 3 and all(0 <= p < 3 for p in few)
    full = attn_positions(1, 100, 0, 8)
    assert len(full) == 8 and all(0 <= p < 100 for p in full)
    assert full == attn_positions(1, 100, 0, 8)
    assert full != attn_positions(1, 100, 1, 8), "layers draw differently"


def test_next_token_depends_on_gathered_bytes():
    assert 0 <= next_token(b"abc", 5, 100) < 100
    assert next_token(b"abc", 5, 1 << 20) != next_token(b"abd", 5, 1 << 20)
    assert next_token(b"abc", 5, 1 << 20) != next_token(b"abc", 6, 1 << 20)


def test_token_stream_digest_is_order_and_framing_sensitive():
    assert token_stream_digest([[1, 2], [3]]) \
        != token_stream_digest([[1], [2, 3]])
    assert token_stream_digest([[1, 2]]) == token_stream_digest([[1, 2]])


# -- KV-cache engines ---------------------------------------------------------

def test_kv_cache_round_trips_model_bytes():
    system = _system()
    cache = KvCache(system, _CFG)
    prompt = prompt_tokens(9, 6, _CFG.vocab)
    cache.write_prompt(prompt)
    assert cache.n_tokens == 6
    cache.append(1234)
    want = b"".join(
        kv_entry(tok, pos, 1, 0, _CFG.entry_bytes)
        for pos, tok in [(2, prompt[2]), (6, 1234)]) + b"".join(
        kv_entry(tok, pos, 1, 1, _CFG.entry_bytes)
        for pos, tok in [(2, prompt[2]), (6, 1234)])
    assert cache.gather(1, [2, 6]) == want
    cache.free()


def test_kv_cache_rejects_misuse():
    system = _system()
    cache = KvCache(system, _CFG)
    cache.write_prompt([1, 2, 3])
    with pytest.raises(ValueError):
        cache.write_prompt([4])          # prompt must come first, once
    with pytest.raises(ValueError):
        KvCache(system, _CFG, name="big").write_prompt(
            list(range(_CFG.max_tokens + 1)))
    cache.free()


def test_aifm_engine_matches_paged_engine_digest():
    paged = make_kv_cache(_system("dilos-readahead"), _CFG)
    ported = make_kv_cache(_system("aifm-rdma"), _CFG)
    assert type(paged).__name__ == "KvCache"
    assert type(ported).__name__ == "AifmKvCache"
    prompt = prompt_tokens(3, 5, _CFG.vocab)
    for cache in (paged, ported):
        cache.write_prompt(prompt)
        cache.append(77)
        cache.append(9999)
    assert paged.gather(0, [1, 4]) == ported.gather(0, [1, 4])
    assert paged.kv_digest() == ported.kv_digest()


def test_pd_transfer_units_round_trip():
    system = _system()
    src = KvCache(system, _CFG, name="src")
    dst = KvCache(system, _CFG, name="dst")
    src.write_prompt(prompt_tokens(2, 7, _CFG.vocab))
    for layer in range(_CFG.layers):
        for half in (0, 1):
            dst.write_layer(layer, half, src.read_layer(layer, half), 7)
    assert dst.n_tokens == 7
    assert dst.kv_digest() == src.kv_digest()
    with pytest.raises(ValueError):
        dst.write_layer(0, 0, b"xx", 7)


# -- the generate loop --------------------------------------------------------

def test_generate_validates_lengths():
    system = _system()
    cache = KvCache(system, _CFG)
    with pytest.raises(ValueError):
        generate(system, cache, _CFG, seed=1, prompt_len=0, out_len=2)
    with pytest.raises(ValueError):
        generate(system, cache, _CFG, seed=1, prompt_len=30, out_len=10)


def test_generate_zero_output_prefills_only():
    system = _system()
    cache = KvCache(system, _CFG)
    run = generate(system, cache, _CFG, seed=1, prompt_len=8, out_len=0)
    assert run.output == []
    assert run.tpot_us == 0.0
    assert run.ttft_us > 0.0
    assert cache.n_tokens == 8


def test_workload_counters_and_result_shape():
    workload = LlmWorkload(n_requests=3, seed=7, config=_CFG,
                           prompt_min=4, prompt_max=8, out_min=2, out_max=4)
    system = _system()
    result = workload.run(system)
    assert result.requests == 3
    assert result.decoded_tokens == sum(len(o) for o in result.outputs)
    snap = system.metrics()
    assert snap.value("llm.requests") == 3
    assert snap.value("llm.prefill_tokens") == result.prefill_tokens
    assert snap.value("llm.decode_tokens") == result.decoded_tokens
    assert snap.value("llm.kv_bytes_written") > 0
    assert snap.value("llm.kv_bytes_gathered") > 0


# -- the serving port ---------------------------------------------------------

def test_llm_service_handles_generate_and_rejects_junk():
    service = SERVICES.build("llm", _system())
    bad = service.handle(Request("get", key=b"x"))
    assert not bad.ok and "generate" in bad.error
    malformed = service.handle(Request("generate", args=(1, 2)))
    assert not malformed.ok
    invalid = service.handle(Request("generate", args=(1, 0, 2)))
    assert not invalid.ok
    good = service.handle(Request("generate", args=(11, 6, 3)))
    assert good.ok
    assert good.value["tokens"] == 3
    assert good.value["ttft_us"] > 0.0
    again = service.handle(Request("generate", args=(11, 6, 3)))
    assert again.value["last_token"] == good.value["last_token"]


def test_llm_service_evicts_finished_sequences_beyond_capacity():
    system = _system()
    service = SERVICES.build("llm", system, capacity_tokens=24)
    rng = random.Random(3)
    for _ in range(8):
        assert service.handle(service.sample_request(rng)).ok
    assert system.metrics().value("llm.seqs_evicted") > 0
    assert service._cached_tokens <= 24 or len(service._finished) == 1


# -- P:D plumbing -------------------------------------------------------------

def test_parse_pd_split():
    assert parse_pd_split("3:1") == (3, 1)
    for bad in ("31", "3:1:2", "a:b", "0:2", "2:-1"):
        with pytest.raises(ValueError):
            parse_pd_split(bad)


def test_sweep_runner_is_picklable_and_rejects_aifm():
    runner = PdSweepRunner("dilos-readahead", n_requests=4)
    assert pickle.loads(pickle.dumps(runner)).kind == "dilos-readahead"
    with pytest.raises(ValueError):
        PdSweepRunner("aifm-rdma")("1:1", 0.5)


def test_best_split_per_ratio_picks_minimum():
    class Cell:
        def __init__(self, system, ratio, value):
            self.system, self.ratio, self.value = system, ratio, value

    cells = [Cell("1:1", 0.25, 5.0), Cell("1:3", 0.25, 3.0),
             Cell("1:1", 1.0, 2.0), Cell("1:3", 1.0, 4.0)]
    assert best_split_per_ratio(cells) == {0.25: "1:3", 1.0: "1:1"}


def test_sample_requests_bounds_and_determinism():
    reqs = sample_requests(16, seed=5, prompt_min=4, prompt_max=9,
                           out_min=0, out_max=3)
    assert reqs == sample_requests(16, seed=5, prompt_min=4, prompt_max=9,
                                   out_min=0, out_max=3)
    assert all(4 <= r.prompt_len <= 9 and 0 <= r.out_len <= 3
               for r in reqs)
    with pytest.raises(ValueError):
        sample_requests(4, seed=5, prompt_min=0, prompt_max=3)
