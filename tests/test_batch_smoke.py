"""Wire ``scripts/batch_smoke.py`` into the suite: the documented
batch-engine / fan-out reproduction (batch == scalar on all three
kernels, parallel sweep/perf fan-out == serial, deterministic cell
seeds) must pass end to end, exactly as CI runs it."""

import sys
from pathlib import Path

import pytest

SCRIPTS = Path(__file__).resolve().parent.parent / "scripts"


@pytest.mark.slow
def test_batch_smoke():
    sys.path.insert(0, str(SCRIPTS))
    try:
        import batch_smoke
    finally:
        sys.path.remove(str(SCRIPTS))
    assert batch_smoke.main() == 0
