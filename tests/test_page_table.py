"""Unit + property tests for the 4-level radix page table."""

from hypothesis import given, settings, strategies as st

from repro.mem import pte
from repro.mem.page_table import PageTable


class TestBasics:
    def test_unmapped_is_zero(self):
        assert PageTable().get(12345) == 0

    def test_set_get(self):
        pt = PageTable()
        pt.set(100, pte.make_local(5))
        assert pt.get(100) == pte.make_local(5)

    def test_set_zero_clears(self):
        pt = PageTable()
        pt.set(100, pte.make_local(5))
        pt.set(100, 0)
        assert pt.get(100) == 0
        assert list(pt.entries()) == []

    def test_distant_vpns_do_not_alias(self):
        pt = PageTable()
        a, b = 0x1, 0x1 + (1 << 27)  # differ only in the top-level index
        pt.set(a, pte.make_local(1))
        pt.set(b, pte.make_local(2))
        assert pte.frame_of(pt.get(a)) == 1
        assert pte.frame_of(pt.get(b)) == 2

    def test_get_then_set_uncached_leaf(self):
        """A miss through the read path must not orphan a later set()."""
        pt = PageTable()
        assert pt.get(777) == 0  # may populate the leaf cache with a stub
        pt.set(777, pte.make_local(9))
        assert pte.frame_of(pt.get(777)) == 9
        assert dict(pt.entries()) == {777: pte.make_local(9)}


class TestCompareAndSet:
    def test_success(self):
        pt = PageTable()
        old = pte.make_remote(3)
        pt.set(50, old)
        assert pt.update(50, old, pte.make_fetching(1))
        assert pte.classify(pt.get(50)) is pte.Tag.FETCHING

    def test_failure_leaves_entry(self):
        pt = PageTable()
        pt.set(50, pte.make_fetching(9))
        assert not pt.update(50, pte.make_remote(3), pte.make_fetching(1))
        assert pt.get(50) == pte.make_fetching(9)

    def test_update_to_zero_clears(self):
        pt = PageTable()
        pt.set(50, pte.make_remote(3))
        assert pt.update(50, pte.make_remote(3), 0)
        assert pt.get(50) == 0


class TestEntries:
    def test_iteration_matches_sets(self):
        pt = PageTable()
        expected = {}
        for vpn in [0, 1, 511, 512, 513, 1 << 18, (1 << 27) + 5]:
            p = pte.make_local(vpn + 1)
            pt.set(vpn, p)
            expected[vpn] = p
        assert dict(pt.entries()) == expected


@settings(max_examples=50, deadline=None)
@given(st.dictionaries(
    keys=st.integers(min_value=0, max_value=(1 << 36) - 1),
    values=st.integers(min_value=1, max_value=2 ** 30),
    max_size=64,
))
def test_pagetable_behaves_like_dict_property(mapping):
    pt = PageTable()
    for vpn, frame in mapping.items():
        pt.set(vpn, pte.make_local(frame))
    for vpn, frame in mapping.items():
        assert pte.frame_of(pt.get(vpn)) == frame
    assert dict(pt.entries()) == {
        vpn: pte.make_local(frame) for vpn, frame in mapping.items()}


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(
    st.integers(min_value=0, max_value=1023),
    st.integers(min_value=0, max_value=2 ** 20)), max_size=100))
def test_last_write_wins_property(writes):
    pt = PageTable()
    shadow = {}
    for vpn, frame in writes:
        value = pte.make_local(frame)
        pt.set(vpn, value)
        shadow[vpn] = value
    for vpn, value in shadow.items():
        assert pt.get(vpn) == value
