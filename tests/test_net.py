"""Unit tests for the RDMA fabric model: latency curve, QP serialization,
scatter-gather, TCP emulation, and wire accounting."""

import pytest

from repro.common.clock import Clock
from repro.common.units import KIB
from repro.mem.remote import MemoryNode
from repro.net.latency import LatencyModel, cycles_to_us
from repro.net.qp import NetStats, QueuePair


@pytest.fixture()
def fabric():
    clock = Clock()
    model = LatencyModel()
    node = MemoryNode(capacity_bytes=1024 * KIB)
    stats = NetStats()
    qp = QueuePair("test", clock, model, node, stats)
    return clock, model, node, stats, qp


class TestLatencyModel:
    def test_figure2_shape(self):
        """A 4 KiB read adds only ~0.6 us over a 128 B read (Figure 2)."""
        model = LatencyModel()
        small = model.rdma_read_latency(128)
        page = model.rdma_read_latency(4096)
        assert 0.4 < page - small < 0.8
        assert 1.0 < small < 2.5
        assert page < 2.5

    def test_monotone_in_size(self):
        model = LatencyModel()
        sizes = [64, 128, 512, 1024, 4096, 16384]
        lats = [model.rdma_read_latency(s) for s in sizes]
        assert lats == sorted(lats)

    def test_write_cheaper_than_read(self):
        model = LatencyModel()
        assert model.rdma_write_latency(4096) < model.rdma_read_latency(4096)

    def test_sg_overlong_penalty(self):
        """Vectors past length three slow down sharply (§6.3)."""
        model = LatencyModel()
        step3 = model.sg_overhead(3) - model.sg_overhead(2)
        step5 = model.sg_overhead(5) - model.sg_overhead(4)
        assert step5 > step3

    def test_cycles(self):
        assert cycles_to_us(2300) == pytest.approx(1.0)


class TestQueuePair:
    def test_single_read_latency(self, fabric):
        clock, model, node, stats, qp = fabric
        completion = qp.post_read(0, 4096)
        expected = model.rdma_post_overhead + model.rdma_read_latency(4096)
        assert completion.time == pytest.approx(expected)

    def test_read_returns_remote_data(self, fabric):
        clock, model, node, stats, qp = fabric
        node.write_bytes(100, b"hello")
        completion = qp.wait(qp.post_read(100, 5))
        assert completion.data == b"hello"

    def test_write_lands_remotely(self, fabric):
        clock, model, node, stats, qp = fabric
        qp.wait(qp.post_write(64, b"abc"))
        assert node.read_bytes(64, 3) == b"abc"

    def test_pipelining_beats_serial_latency(self, fabric):
        """Back-to-back reads are spaced by wire time, not full latency."""
        clock, model, node, stats, qp = fabric
        completions = [qp.post_read(i * 4096, 4096) for i in range(8)]
        total = completions[-1].time
        serial = 8 * (model.rdma_post_overhead + model.rdma_read_latency(4096))
        assert total < serial * 0.6

    def test_head_of_line_blocking(self, fabric):
        """A small read behind a huge transfer waits for its wire time."""
        clock, model, node, stats, qp = fabric
        qp.post_read(0, 512 * KIB)
        blocked = qp.post_read(0, 128)
        alone = model.rdma_post_overhead * 2 + model.rdma_read_latency(128)
        assert blocked.time > alone + 50.0

    def test_separate_qps_do_not_block(self, fabric):
        clock, model, node, stats, qp = fabric
        other = QueuePair("other", clock, model, node, stats)
        qp.post_read(0, 512 * KIB)
        quick = other.post_read(0, 128)
        assert quick.time < 3.0

    def test_completion_callback_fires_once_at_time(self, fabric):
        clock, model, node, stats, qp = fabric
        seen = []
        completion = qp.post_read(0, 4096, on_complete=lambda c: seen.append(clock.now))
        clock.advance_to(completion.time - 0.01)
        assert seen == []
        clock.advance(0.02)
        assert seen == [pytest.approx(completion.time)]

    def test_cancelled_completion_suppresses_callback(self, fabric):
        clock, model, node, stats, qp = fabric
        seen = []
        completion = qp.post_read(0, 4096, on_complete=lambda c: seen.append(1))
        completion.cancelled = True
        clock.advance_to(completion.time + 1)
        assert seen == []

    def test_posting_charges_cpu(self, fabric):
        clock, model, node, stats, qp = fabric
        qp.post_read(0, 64)
        assert clock.now == pytest.approx(model.rdma_post_overhead)


class TestScatterGather:
    def test_sg_read_concatenates(self, fabric):
        clock, model, node, stats, qp = fabric
        node.write_bytes(0, b"AA")
        node.write_bytes(10, b"BBB")
        completion = qp.wait(qp.post_read_sg([(0, 2), (10, 3)]))
        assert completion.data == b"AABBB"

    def test_sg_write_scatters(self, fabric):
        clock, model, node, stats, qp = fabric
        qp.wait(qp.post_write_sg([(0, b"xy"), (100, b"z")]))
        assert node.read_bytes(0, 2) == b"xy"
        assert node.read_bytes(100, 1) == b"z"

    def test_sg_cheaper_than_full_page_when_sparse(self, fabric):
        """Fetching 3 small live ranges beats fetching the whole page."""
        clock, model, node, stats, qp = fabric
        sparse = qp.post_read_sg([(0, 256), (1024, 256), (2048, 256)])
        t_sparse = sparse.time - clock.now
        clock2 = Clock()
        qp2 = QueuePair("q2", clock2, model, node, NetStats())
        full = qp2.post_read(0, 4096)
        assert t_sparse < full.time

    def test_empty_sg_rejected(self, fabric):
        _, _, _, _, qp = fabric
        with pytest.raises(ValueError):
            qp.post_read_sg([])


class TestNetStats:
    def test_accounting(self, fabric):
        clock, model, node, stats, qp = fabric
        qp.post_read(0, 4096)
        qp.post_write(0, b"x" * 100)
        assert stats.bytes_read == 4096
        assert stats.bytes_written == 100
        assert stats.ops_read == 1
        assert stats.ops_write == 1
        assert stats.total_bytes == 4196
        assert len(stats.timeline) == 2


class TestTcpEmulation:
    def test_extra_completion_delay(self):
        clock = Clock()
        model = LatencyModel()
        node = MemoryNode(capacity_bytes=64 * KIB)
        rdma = QueuePair("rdma", clock, model, node, NetStats())
        tcp = QueuePair("tcp", clock, model, node, NetStats(),
                        extra_completion_delay=model.tcp_extra)
        t_rdma = rdma.post_read(0, 4096).time
        t_tcp = tcp.post_read(0, 4096).time
        # 14,000 cycles at 2.3 GHz, minus the rdma QP's post already on the clock.
        assert t_tcp - t_rdma == pytest.approx(
            model.tcp_extra + model.rdma_post_overhead)


class TestBandwidthSeries:
    def test_binning(self):
        stats = NetStats()
        stats.record(1.0, 100, "read")
        stats.record(1.5, 50, "write")
        stats.record(12.0, 200, "read")
        series = stats.bandwidth_series(bin_us=10.0)
        assert series == [(0.0, 150), (10.0, 200)]

    def test_empty_timeline(self):
        assert NetStats().bandwidth_series(10.0) == []

    def test_uniform_bins_include_empties(self):
        stats = NetStats()
        stats.record(0.0, 10, "read")
        stats.record(35.0, 10, "read")
        series = stats.bandwidth_series(bin_us=10.0)
        assert [b for _t, b in series] == [10, 0, 0, 10]

    def test_bad_bin_rejected(self):
        with pytest.raises(ValueError):
            NetStats().bandwidth_series(0)

    def test_window_selection(self):
        stats = NetStats()
        for t in (5.0, 15.0, 25.0):
            stats.record(t, 1, "read")
        series = stats.bandwidth_series(bin_us=10.0, start=10.0, stop=20.0)
        assert series == [(10.0, 1), (20.0, 0)]
