"""Unit tests for the TLB model."""

import pytest

from repro.mem.tlb import Tlb


def test_miss_then_hit():
    tlb = Tlb()
    assert tlb.lookup(5) is None
    tlb.fill(5, frame=9, writable=True, dirty_set=False)
    assert tlb.lookup(5) == (9, True, False)
    assert tlb.hits == 1
    assert tlb.misses == 1


def test_capacity_eviction_is_lru():
    tlb = Tlb(capacity=2)
    tlb.fill(1, 1, True, False)
    tlb.fill(2, 2, True, False)
    assert tlb.lookup(1) is not None  # 1 becomes MRU
    tlb.fill(3, 3, True, False)       # evicts 2
    assert tlb.lookup(2) is None
    assert tlb.lookup(1) is not None
    assert tlb.lookup(3) is not None


def test_invalidate():
    tlb = Tlb()
    tlb.fill(7, 1, True, False)
    tlb.invalidate(7)
    assert tlb.lookup(7) is None


def test_invalidate_absent_is_noop():
    Tlb().invalidate(99)


def test_flush():
    tlb = Tlb()
    for vpn in range(10):
        tlb.fill(vpn, vpn, True, False)
    tlb.flush()
    assert len(tlb) == 0


def test_mark_dirty_set():
    tlb = Tlb()
    tlb.fill(4, 2, True, False)
    tlb.mark_dirty_set(4)
    assert tlb.lookup(4) == (2, True, True)


def test_mark_dirty_absent_is_noop():
    Tlb().mark_dirty_set(123)


def test_zero_capacity_rejected():
    with pytest.raises(ValueError):
        Tlb(capacity=0)
