"""Wire ``scripts/llm_smoke.py`` into the suite: the documented LLM
reproduction (compatibility invariant across kernels/ratios/engines,
P:D disaggregation exactness, byte-identical parallel sweep, TTFT SLO
red/green) must pass end to end, exactly as CI runs it."""

import sys
from pathlib import Path

import pytest

SCRIPTS = Path(__file__).resolve().parent.parent / "scripts"


@pytest.mark.slow
def test_llm_smoke():
    sys.path.insert(0, str(SCRIPTS))
    try:
        import llm_smoke
    finally:
        sys.path.remove(str(SCRIPTS))
    assert llm_smoke.main() == 0
