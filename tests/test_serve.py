"""The open-loop serving layer: arrivals, admission, balancing, SLO
accounting, and the end-to-end red/green overload story."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.units import KIB, MIB
from repro.core.spec import SystemSpec
from repro.harness.scenarios import SERVE_SCENARIOS, build_serve_scenario
from repro.obs.registry import MetricsRegistry
from repro.serve import (
    ServeSpec,
    arrival_kinds,
    balancer_kinds,
    coerce_serve_spec,
    make_admission,
    make_arrivals,
    make_balancer,
    parse_duration_us,
    parse_scaled,
)
from repro.serve.admission import (
    NoAdmission,
    QueueDepthAdmission,
    TokenBucketAdmission,
)
from repro.sim.tenancy import ComputeCluster


# -- spec grammar ------------------------------------------------------------

class TestServeSpec:
    def test_scaled_numbers(self):
        assert parse_scaled("5k") == 5_000.0
        assert parse_scaled("1.5m") == 1_500_000.0
        assert parse_scaled("2G") == 2e9
        assert parse_scaled("250") == 250.0
        with pytest.raises(ValueError, match="k/m/g"):
            parse_scaled("5x")

    def test_durations_normalize_to_us(self):
        assert parse_duration_us("2ms") == 2_000.0
        assert parse_duration_us("500us") == 500.0
        assert parse_duration_us("1s") == 1_000_000.0
        assert parse_duration_us("750") == 750.0
        with pytest.raises(ValueError, match="duration"):
            parse_duration_us("fast")

    def test_full_spec_parses(self):
        spec = ServeSpec.from_spec(
            "bursty:rate=2k,burst_rate=20k,on=50ms,off=200ms,slo=500us,"
            "clients=1m,requests=4k,seed=9,admission=depth/64,balance=least")
        assert spec.kind == "bursty"
        assert spec.rate_rps == 2_000.0
        assert spec.clients == 1_000_000
        assert spec.slo_us == 500.0
        assert spec.requests == 4_000
        assert spec.seed == 9
        assert spec.admission == "depth/64"
        assert spec.balance == "least"
        assert spec.params == {"burst_rate": 20_000.0, "on": 50_000.0,
                               "off": 200_000.0}

    def test_round_trip(self):
        spec = ServeSpec.from_spec(
            "diurnal:rate=8k,floor=500,period=1s,slo=1ms,requests=300")
        again = ServeSpec.from_spec(spec.to_spec())
        assert again == spec

    def test_rejects_unknown_kind_and_key(self):
        with pytest.raises(ValueError, match="unknown arrival kind"):
            ServeSpec.from_spec("uniform:rate=1k")
        with pytest.raises(ValueError, match="unknown serve spec key"):
            ServeSpec.from_spec("poisson:rate=1k,think=5ms")

    def test_rejects_nonpositive_fields(self):
        for bad in ("rate=0", "clients=0", "slo=0", "requests=0"):
            with pytest.raises(ValueError):
                ServeSpec.from_spec(f"poisson:{bad}")

    def test_coercion(self):
        assert coerce_serve_spec(None) is None
        spec = ServeSpec()
        assert coerce_serve_spec(spec) is spec
        assert coerce_serve_spec("poisson:rate=1k").rate_rps == 1_000.0
        with pytest.raises(TypeError):
            coerce_serve_spec(42)

    def test_registered_kinds(self):
        assert set(arrival_kinds()) >= {"poisson", "bursty", "diurnal"}


# -- arrival processes -------------------------------------------------------

class TestArrivals:
    def test_poisson_exact_seeded_timestamps(self):
        # Pinned against random.Random(7).expovariate — the generators
        # are part of the determinism contract, so these exact floats
        # must never drift.
        spec = ServeSpec.from_spec(
            "poisson:rate=100k,clients=1000,requests=5,seed=7,slo=1ms")
        got = [(a.t_us, a.client_id) for a in make_arrivals(spec)]
        assert got == [
            (3.9131484423480427, 154),
            (8.935499662850612, 49),
            (9.687437595250067, 548),
            (10.676032769159363, 596),
            (11.273521398942373, 519),
        ]

    def test_bursty_exact_seeded_timestamps(self):
        spec = ServeSpec.from_spec(
            "bursty:rate=50k,burst_rate=500k,on=1ms,off=2ms,clients=1000,"
            "requests=5,seed=3,slo=1ms")
        got = [(a.t_us, a.client_id) for a in make_arrivals(spec)]
        assert got == [
            (15.715305658195428, 378),
            (65.24093951156213, 485),
            (84.89597773335402, 67),
            (103.5037470318352, 930),
            (139.8414876576045, 265),
        ]

    @pytest.mark.parametrize("spec_text", [
        "poisson:rate=50k,clients=100,requests=400,seed=5",
        "bursty:rate=20k,burst_rate=200k,on=2ms,off=4ms,requests=400,seed=5",
        "diurnal:rate=50k,floor=5k,period=10ms,requests=400,seed=5",
    ])
    def test_streams_are_deterministic_and_well_formed(self, spec_text):
        spec = ServeSpec.from_spec(spec_text)
        first = list(make_arrivals(spec))
        second = list(make_arrivals(spec))
        assert first == second
        assert len(first) == spec.requests
        assert all(a.client_id < spec.clients for a in first)
        times = [a.t_us for a in first]
        assert times == sorted(times)
        assert times[0] > 0

    def test_seed_changes_the_stream(self):
        base = ServeSpec.from_spec("poisson:rate=10k,requests=50,seed=1")
        other = base.with_overrides(seed=2)
        assert list(make_arrivals(base)) != list(make_arrivals(other))

    def test_bursty_bursts_are_denser(self):
        # Mean gap during a burst must be well below the quiet mean gap;
        # compare medians of the shortest/longest halves as a proxy.
        spec = ServeSpec.from_spec(
            "bursty:rate=10k,burst_rate=1m,on=5ms,off=5ms,requests=2000,"
            "seed=11")
        times = [a.t_us for a in make_arrivals(spec)]
        gaps = sorted(b - a for a, b in zip(times, times[1:]))
        # Bursts (1M rps, ~1 us gaps) dominate the stream; the quiet
        # state (10k rps, ~100 us gaps) survives only in the far tail.
        assert gaps[len(gaps) // 2] < 5.0
        assert gaps[-1] > 50.0

    def test_diurnal_floor_must_not_exceed_peak(self):
        spec = ServeSpec.from_spec(
            "diurnal:rate=1k,floor=5k,period=1s,requests=10")
        with pytest.raises(ValueError, match="floor"):
            list(make_arrivals(spec))


# -- admission ---------------------------------------------------------------

class TestAdmission:
    def test_parse(self):
        assert isinstance(make_admission("none"), NoAdmission)
        depth = make_admission("depth/64")
        assert isinstance(depth, QueueDepthAdmission)
        assert depth.max_depth == 64
        bucket = make_admission("bucket/5k/32")
        assert isinstance(bucket, TokenBucketAdmission)
        assert bucket.burst == 32.0
        with pytest.raises(ValueError, match="unknown admission"):
            make_admission("random/0.5")
        with pytest.raises(ValueError, match="depth"):
            make_admission("depth")

    def test_depth_policy(self):
        policy = QueueDepthAdmission(2)
        assert policy.admit(0.0, 0)
        assert policy.admit(0.0, 1)
        assert not policy.admit(0.0, 2)

    def test_token_bucket_refills_on_virtual_time(self):
        policy = TokenBucketAdmission(rate_rps=1_000_000.0, burst=2)
        # Burst of 2 admits back-to-back, the third is shed...
        assert policy.admit(0.0, 0)
        assert policy.admit(0.0, 0)
        assert not policy.admit(0.0, 0)
        # ...and exactly one token returns after 1 us at 1 token/us.
        assert policy.admit(1.0, 0)
        assert not policy.admit(1.0, 0)
        policy.reset()
        assert policy.admit(0.0, 0)


# -- balancers ---------------------------------------------------------------

class TestBalancers:
    def test_kinds(self):
        assert set(balancer_kinds()) >= {"round_robin", "least", "hash"}
        with pytest.raises(ValueError, match="unknown balancer"):
            make_balancer("random", ["a"])

    @given(st.integers(min_value=1, max_value=7),
           st.integers(min_value=1, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_round_robin_is_exactly_fair(self, n, k):
        balancer = make_balancer(
            "round_robin", [f"t{i}" for i in range(n)])
        counts = [0] * n
        for _ in range(k):
            counts[balancer.pick(b"key", [0] * n)] += 1
        assert max(counts) - min(counts) <= 1

    @given(st.lists(st.integers(min_value=0, max_value=50),
                    min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_least_joins_a_shortest_queue(self, depths):
        balancer = make_balancer(
            "least", [f"t{i}" for i in range(len(depths))])
        pick = balancer.pick(b"key", depths)
        assert depths[pick] == min(depths)

    @given(st.binary(min_size=1, max_size=16))
    @settings(max_examples=60, deadline=None)
    def test_hash_gives_stable_affinity(self, key):
        tenants = ["a", "b", "c", "d"]
        first = make_balancer("hash", tenants)
        second = make_balancer("hash", tenants)
        pick = first.pick(key, [0] * 4)
        # Same key -> same tenant, across calls and across instances
        # (no dependence on hash() randomization).
        assert first.pick(key, [9, 9, 9, 9]) == pick
        assert second.pick(key, [0] * 4) == pick

    def test_hash_spreads_the_keyspace(self):
        balancer = make_balancer("hash", ["a", "b", "c"])
        rng = random.Random(5)
        picks = {balancer.pick(rng.randrange(1 << 32).to_bytes(4, "big"),
                               [0, 0, 0])
                 for _ in range(200)}
        assert picks == {0, 1, 2}

    def test_hash_remaps_a_minority_on_membership_change(self):
        # The consistent-hashing property: growing the fleet by one
        # tenant moves only ~1/N of the keyspace.
        small = make_balancer("hash", ["a", "b", "c"])
        grown = make_balancer("hash", ["a", "b", "c", "d"])
        rng = random.Random(6)
        keys = [rng.randrange(1 << 32).to_bytes(4, "big")
                for _ in range(400)]
        moved = sum(
            1 for key in keys
            if small.pick(key, [0] * 3) != grown.pick(key, [0] * 4)
            and grown.pick(key, [0] * 4) != 3)
        assert moved < len(keys) * 0.15


# -- the LogHistogram instrument --------------------------------------------

class TestLogHistogram:
    def test_quantile_error_is_bounded(self):
        registry = MetricsRegistry()
        hist = registry.log_histogram("serve.latency_us")
        rng = random.Random(3)
        samples = sorted(rng.uniform(1.0, 50_000.0) for _ in range(5000))
        for value in samples:
            hist.record(value)
        for pct in (50.0, 99.0, 99.9):
            exact = samples[min(len(samples) - 1,
                                int(pct / 100.0 * len(samples)))]
            assert hist.pct(pct) == pytest.approx(exact, rel=0.09)

    def test_memory_is_bounded_by_buckets_not_samples(self):
        registry = MetricsRegistry()
        hist = registry.log_histogram("serve.latency_us")
        for i in range(20_000):
            hist.record(1.0 + (i % 977))
        # 8 buckets per octave over [1, 978) spans ~10 octaves.
        assert len(hist._counts) < 100
        assert hist.count == 20_000

    def test_snapshot_summary_has_p999(self):
        registry = MetricsRegistry()
        hist = registry.log_histogram("serve.latency_us")
        for value in (1.0, 2.0, 4.0, 1000.0):
            hist.record(value)
        snap = registry.snapshot("test", 0.0)
        summary = snap.histograms["serve.latency_us"]
        assert summary["count"] == 4.0
        assert {"p50", "p99", "p999", "mean", "min", "max"} <= set(summary)


# -- the frontend over a real cluster ---------------------------------------

def _tiny_cluster(serve: str) -> ComputeCluster:
    cluster = ComputeCluster(backend="sharded:2",
                             remote_mem_bytes=32 * MIB, serve=serve)
    spec = SystemSpec(kind="dilos-readahead", local_mem_bytes=256 * KIB)
    cluster.add_service("web1", spec, "redis", n_keys=200, value_bytes=2048)
    cluster.add_service("web2", spec, "redis", n_keys=200, value_bytes=2048)
    return cluster


class TestServeFrontend:
    OVERLOAD = ("bursty:rate=50k,burst_rate=3m,on=2ms,off=3ms,clients=1m,"
                "slo=500us,requests=1500,seed=7")

    def test_admission_red_green(self):
        # Red: open-loop overload with no admission lets the backlog grow
        # for the whole burst, so the p99 blows through the SLO.
        red = _tiny_cluster(self.OVERLOAD).serve()
        assert red.shed == 0
        assert red.latency["p99"] > red.spec.slo_us
        assert red.slo_violations > 0
        # Green: bounding the queue bounds the tail; everything served
        # meets the SLO and the overflow is shed, visibly, on the counter.
        green = _tiny_cluster(
            self.OVERLOAD + ",admission=depth/16").serve()
        assert green.shed > 0
        assert green.latency["p99"] < green.spec.slo_us
        assert green.slo_violations == 0
        assert green.snapshot.value("serve.shed") == green.shed
        assert green.goodput_rps > red.goodput_rps

    def test_canonical_metrics_are_registered(self):
        report = _tiny_cluster(
            "poisson:rate=20k,requests=300,seed=5,slo=2ms").serve()
        snap = report.snapshot
        assert snap.value("serve.offered") == 300
        assert snap.value("serve.admitted") == 300
        assert (snap.value("serve.completed")
                == snap.value("serve.goodput") + report.slo_violations
                + report.errors)
        assert snap.histograms["serve.latency_us"]["count"] == 300
        assert "serve.queue_depth" in snap.histograms
        assert snap.value("serve.offered_rps") > 0
        assert (snap.value("tenant.web1.served")
                + snap.value("tenant.web2.served") == 300)

    def test_trace_and_metrics_digests_are_stable(self):
        spec = "poisson:rate=20k,requests=300,seed=5,slo=2ms"
        first = _tiny_cluster(spec).serve()
        second = _tiny_cluster(spec).serve()
        assert first.trace_digest == second.trace_digest
        assert first.snapshot.digest() == second.snapshot.digest()
        third = _tiny_cluster(
            "poisson:rate=20k,requests=300,seed=6,slo=2ms").serve()
        assert third.trace_digest != first.trace_digest

    def test_spec_resolution_order(self):
        # Explicit spec beats the cluster default beats the tenant spec.
        cluster = ComputeCluster(backend="sharded:2",
                                 remote_mem_bytes=32 * MIB)
        spec = SystemSpec(kind="dilos-readahead", local_mem_bytes=1 * MIB,
                          serve="poisson:rate=9k,requests=50,seed=2")
        cluster.add_service("web1", spec, "redis", n_keys=50,
                            value_bytes=512)
        report = cluster.serve()
        assert report.spec.rate_rps == 9_000.0  # from the SystemSpec
        report = cluster.serve("poisson:rate=7k,requests=50,seed=2")
        assert report.spec.rate_rps == 7_000.0  # explicit argument wins

    def test_serve_requires_service_tenants(self):
        cluster = ComputeCluster(backend="sharded:2",
                                 remote_mem_bytes=32 * MIB)
        with pytest.raises(RuntimeError, match="no tenants enrolled|no "
                                               "service tenants"):
            cluster.serve()

    def test_add_service_rejects_non_services(self):
        cluster = ComputeCluster(backend="sharded:2",
                                 remote_mem_bytes=32 * MIB)
        spec = SystemSpec(kind="dilos-readahead", local_mem_bytes=1 * MIB)
        with pytest.raises(TypeError, match="Service protocol"):
            cluster.add_service("bad", spec, service=object())


class TestServePresets:
    def test_registry_shape(self):
        assert set(SERVE_SCENARIOS) == {"flash_crowd", "hot_key_skew",
                                        "slow_tenant_isolation",
                                        "llm_flash_crowd"}
        with pytest.raises(ValueError, match="unknown serve preset"):
            build_serve_scenario("thundering_herd")

    def test_naive_override_applies(self):
        green = build_serve_scenario("flash_crowd")
        red = build_serve_scenario("flash_crowd", naive=True)
        assert green.serve_spec.admission == "depth/64"
        assert red.serve_spec.admission == "none"

    def test_cli_serve_runs_the_preset(self, capsys):
        from repro.cli import main
        code = main(["serve", "--preset", "flash_crowd",
                     "--spec", self_spec(), "--once", "--no-contrast"])
        out = capsys.readouterr().out
        assert code == 0
        assert "serve.* (canonical metrics)" in out
        assert "p99 latency (us)" in out
        assert "request-trace digest" in out

    def test_cli_serve_rejects_unknown_preset(self, capsys):
        from repro.cli import main
        assert main(["serve", "--preset", "nope", "--once"]) == 2


class TestLlmServing:
    """Token-level SLOs: the llm preset's red/green story and the
    determinism of its request traces."""

    def test_llm_flash_crowd_red_green(self):
        # Red: no admission lets the burst backlog compound, so the
        # time-to-first-token tail (queueing included) blows through
        # the SLO by orders of magnitude.
        red = build_serve_scenario("llm_flash_crowd", naive=True).serve()
        assert red.shed == 0
        assert red.ttft["count"] > 0, "llm responses must carry ttft_us"
        assert red.ttft["p99"] > red.spec.slo_us
        assert red.violation_rate > 0.1
        # Green: the preset's token bucket sheds the overhang; TTFT p99
        # stays bounded and nothing served misses the SLO.
        green = build_serve_scenario("llm_flash_crowd").serve()
        assert green.shed > 0
        assert green.ttft["p99"] < green.spec.slo_us
        assert green.slo_violations == 0
        assert green.snapshot.value("serve.shed") == green.shed

    def test_llm_token_metrics_reach_the_snapshot(self):
        report = build_serve_scenario("llm_flash_crowd").serve(
            "poisson:rate=2k,requests=120,seed=9,slo=5ms")
        snap = report.snapshot
        assert snap.histograms["serve.ttft_us"]["count"] == report.admitted
        assert snap.histograms["serve.tpot_us"]["count"] == report.admitted
        assert (snap.value("tenant.gen1.llm.requests")
                + snap.value("tenant.gen2.llm.requests")
                == report.admitted)
        assert report.summary()["ttft_p99_us"] == report.ttft["p99"]
        # TPOT measures steady-state decode; TTFT carries prefill and
        # queueing on top, so its tail dominates.
        assert report.ttft["p99"] > report.tpot["p99"]

    def test_llm_trace_is_deterministic(self):
        first = build_serve_scenario("llm_flash_crowd").serve()
        second = build_serve_scenario("llm_flash_crowd").serve()
        assert first.trace_digest == second.trace_digest
        assert first.snapshot.digest() == second.snapshot.digest()
        assert first.ttft == second.ttft
        reseeded = build_serve_scenario("llm_flash_crowd").serve(
            ("bursty:rate=4k,burst_rate=1m,on=3ms,off=5ms,clients=100k,"
             "slo=1ms,requests=1200,seed=24,admission=bucket/5k/16"))
        assert reseeded.trace_digest != first.trace_digest


def self_spec() -> str:
    """A small spec so the CLI test stays fast on the tier-1 path."""
    return ("bursty:rate=100k,burst_rate=3m,on=2ms,off=3ms,clients=1m,"
            "slo=1ms,requests=800,seed=7,admission=depth/64")
