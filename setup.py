"""Setup shim.

Kept alongside pyproject.toml so that editable installs work on
environments whose setuptools predates PEP 660 / lacks the ``wheel``
package (``pip install -e . --no-use-pep517 --no-build-isolation``).
"""

from setuptools import setup

setup()
